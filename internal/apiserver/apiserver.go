// Package apiserver serves inference results over HTTP as JSON — the
// counterpart of the public AS Rank API that the paper's system feeds.
// Endpoints (all GET):
//
//	/api/v1/health                               liveness and dataset summary
//	/api/v1/clique                               the inferred clique
//	/api/v1/asns                                 ranked ASes (cursor or limit/offset paging)
//	/api/v1/asns?ids=a,b,c                       bulk point lookup
//	/api/v1/asns/{asn}                           one AS: rank, cone, degrees
//	/api/v1/asns/{asn}/links                     neighbors with relationship + provenance
//	/api/v1/asns/{asn}/cone                      customer cone membership
//	/api/v1/asns/{asn}/cone/contains/{member}    bitset membership probe
//
// The handlers serve an immutable snapshot (see Build): every summary,
// neighbor list, and cone-prefix sum is precomputed, point lookups
// write pre-serialized bytes without allocating, and every data route
// carries a snapshot-derived strong ETag honoring If-None-Match with a
// body-free 304. Responses are compact by default; ?pretty=1 opts into
// indentation. Every route sits behind load-shedding admission control
// (ShedPolicy): past the per-route concurrency limit requests queue
// briefly, then shed with 429/503 + Retry-After, all visible in the
// obs registry.
package apiserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/asrank-go/asrank/internal/obs"
	"github.com/asrank-go/asrank/internal/trace"
	"github.com/asrank-go/asrank/internal/warehouse"
)

// asnSummary is the JSON shape of one ranked AS.
type asnSummary struct {
	ASN           uint32 `json:"asn"`
	Rank          int    `json:"rank"`
	ConeASes      int    `json:"coneASes"`
	ConePrefixes  int    `json:"conePrefixes"`
	TransitDegree int    `json:"transitDegree"`
	Degree        int    `json:"degree"`
	Providers     int    `json:"providers"`
	Customers     int    `json:"customers"`
	Peers         int    `json:"peers"`
	InClique      bool   `json:"inClique"`
}

// linkEntry is the JSON shape of one adjacency.
type linkEntry struct {
	Neighbor     uint32 `json:"neighbor"`
	Relationship string `json:"relationship"` // provider | customer | peer (relative to the queried AS)
	Step         string `json:"inferredBy"`
}

// Config assembles a production handler: metrics registry, optional
// tracer, and the load-shedding policy.
type Config struct {
	// Registry receives per-route HTTP metrics; nil selects the
	// process-global obs.Default().
	Registry *obs.Registry
	// Tracer, when non-nil, wraps every route in request spans.
	Tracer *trace.Tracer
	// Shed is the per-route admission policy; the zero value disables
	// shedding (use DefaultShedPolicy for production limits).
	Shed ShedPolicy
	// Metrics, when non-nil, is the metric handle every built handler
	// records into — inject it to read the SLO counters and in-flight
	// gauge from outside (health checks, drain loops). Nil binds a
	// handle to Registry on each build; the underlying families are the
	// same either way.
	Metrics *Metrics
}

// NewHandler returns the API's HTTP handler, instrumented into the
// process-global metrics registry, with default load shedding.
func NewHandler(d *Data) http.Handler {
	return NewServer(d, Config{Shed: DefaultShedPolicy()})
}

// NewHandlerWith returns the API's HTTP handler with per-route request
// metrics recorded into reg — injectable so tests can assert on a
// fresh registry.
func NewHandlerWith(d *Data, reg *obs.Registry) http.Handler {
	return NewServer(d, Config{Registry: reg, Shed: DefaultShedPolicy()})
}

// NewHandlerTraced is NewHandlerWith plus request tracing.
func NewHandlerTraced(d *Data, reg *obs.Registry, tr *trace.Tracer) http.Handler {
	return NewServer(d, Config{Registry: reg, Tracer: tr, Shed: DefaultShedPolicy()})
}

// NewServer builds the production read path over snapshot d. Per
// route, outermost first: trace span (when configured) → metrics →
// admission gate → handler, so shed rejections are counted and traced
// like any other response.
func NewServer(d *Data, cfg Config) http.Handler {
	return NewServerWithStore(d, nil, cfg)
}

// NewServerWithStore is NewServer plus the time-travel routes
// (/epochs, /asns/{asn}/history, /diff) over an epoch warehouse; a nil
// store yields exactly the NewServer route table. The history routes
// run behind the same span → metrics → admission stack, under the
// warehouse chain ETag instead of the snapshot ETag.
func NewServerWithStore(d *Data, st *warehouse.Store, cfg Config) http.Handler {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	m := cfg.Metrics
	if m == nil {
		m = NewMetrics(reg)
	}
	mux := http.NewServeMux()
	handle := func(route string, policy ShedPolicy, h http.HandlerFunc) {
		mux.Handle("GET "+route,
			TraceRequests(cfg.Tracer, route, m.Wrap(route, Shed(route, policy, m, h))))
	}
	heavy := cfg.Shed
	light := cfg.Shed.scaled(pointLookupFactor)
	handle("/api/v1/health", light, d.handleHealth)
	handle("/api/v1/clique", heavy, d.handleClique)
	handle("/api/v1/asns", heavy, d.handleList)
	handle("/api/v1/asns/{asn}", light, d.handleASN)
	handle("/api/v1/asns/{asn}/links", heavy, d.handleLinks)
	handle("/api/v1/asns/{asn}/cone", heavy, d.handleCone)
	handle("/api/v1/asns/{asn}/cone/contains/{member}", light, d.handleConeContains)
	if st != nil {
		tt := &timeTravel{store: st}
		handle("/api/v1/epochs", light, tt.handleEpochs)
		handle("/api/v1/asns/{asn}/history", heavy, tt.handleHistory)
		handle("/api/v1/diff", heavy, tt.handleDiff)
	}
	return mux
}

// bufPool recycles response staging buffers across requests, so the
// buffered-write path allocates only the JSON encoder state.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// wantPretty reports whether the request opted into indented output.
// Substring probe on the raw query — no URL parsing on the hot path;
// the false-positive surface (a key literally named "pretty=1" inside
// another value) is not worth a parse.
func wantPretty(r *http.Request) bool {
	return strings.Contains(r.URL.RawQuery, "pretty=1")
}

// writeJSON stages v in a pooled buffer before touching the
// ResponseWriter — an encoding failure yields a clean 500, a success a
// correct Content-Length — and counts transport write failures.
// Compact unless pretty.
func writeJSON(w http.ResponseWriter, pretty bool, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	if pretty {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(v); err != nil {
		http.Error(w, "internal error: response encoding failed", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		writeFailures.Inc()
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(map[string]string{"error": msg}); err != nil {
		http.Error(w, "internal error", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		writeFailures.Inc()
	}
}

// writeHot serves a pre-serialized body with the snapshot ETag. Zero
// allocations on the compact path; ?pretty=1 re-indents through the
// pooled buffer.
//
//asrank:hotpath
func (d *Data) writeHot(w http.ResponseWriter, r *http.Request, body []byte) {
	if wantPretty(r) {
		buf := bufPool.Get().(*bytes.Buffer)
		defer bufPool.Put(buf)
		buf.Reset()
		if err := json.Indent(buf, body, "", "  "); err != nil {
			http.Error(w, "internal error: response encoding failed", http.StatusInternalServerError)
			return
		}
		d.setHot(w.Header())
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		if _, err := w.Write(buf.Bytes()); err != nil {
			writeFailures.Inc()
		}
		return
	}
	d.setHot(w.Header())
	if _, err := w.Write(body); err != nil {
		writeFailures.Inc()
	}
}

func (d *Data) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Health is a liveness probe: always a 200 body, never a 304 — but
	// it still serves the pre-rendered snapshot bytes.
	d.writeHot(w, r, d.healthJSON)
}

func (d *Data) handleClique(w http.ResponseWriter, r *http.Request) {
	if d.notModified(w, r) {
		return
	}
	d.writeHot(w, r, d.cliqueJSON)
}

// handleList serves the ranked listing: bulk (?ids=), cursor
// (?cursor=&limit=), or legacy offset (?limit=&offset=) paging. The
// bare request (no query) is the pre-serialized first page.
func (d *Data) handleList(w http.ResponseWriter, r *http.Request) {
	if d.notModified(w, r) {
		return
	}
	if r.URL.RawQuery == "" {
		d.writeHot(w, r, d.firstPageJSON)
		return
	}
	q := r.URL.Query()
	if ids := q.Get("ids"); ids != "" {
		d.handleBulk(w, r, ids)
		return
	}
	limit, err := intParam(q.Get("limit"), listDefaultLimit)
	if err != nil || limit <= 0 || limit > 1000 {
		writeError(w, http.StatusBadRequest, "limit must be in 1..1000")
		return
	}
	offset := 0
	if c := q.Get("cursor"); c != "" {
		offset, err = strconv.Atoi(c)
		if err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, "bad cursor; use the nextCursor of a previous page")
			return
		}
	} else {
		offset, err = intParam(q.Get("offset"), 0)
		if err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, "offset must be >= 0")
			return
		}
	}
	d.setHot(w.Header())
	writeJSON(w, wantPretty(r), d.page(offset, limit))
}

// bulkLimit caps one bulk lookup, matching the list page cap.
const bulkLimit = 1000

// bulkResponse answers ?ids=: summaries in request order for known
// ASes, the unknown ids split out (never null).
type bulkResponse struct {
	Data    []json.RawMessage `json:"data"`
	Missing []uint32          `json:"missing"`
}

func (d *Data) handleBulk(w http.ResponseWriter, r *http.Request, ids string) {
	out := bulkResponse{Data: []json.RawMessage{}, Missing: []uint32{}}
	for n, rest := 0, ids; rest != ""; n++ {
		if n >= bulkLimit {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("ids: more than %d values", bulkLimit))
			return
		}
		tok := rest
		if i := strings.IndexByte(rest, ','); i >= 0 {
			tok, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		asn, ok := parseASN(tok)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("ids: bad AS number %q", tok))
			return
		}
		if p, ok := d.idx.Pos(asn); ok {
			out.Data = append(out.Data, json.RawMessage(d.summaryJSON[p]))
		} else {
			out.Missing = append(out.Missing, asn)
		}
	}
	d.setHot(w.Header())
	writeJSON(w, wantPretty(r), out)
}

// parseASN is an allocation-free uint32 parser for the hot lookup
// paths (strconv's error path allocates).
//
//asrank:hotpath
func parseASN(s string) (uint32, bool) {
	if s == "" || len(s) > 10 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
		if v > 1<<32-1 {
			return 0, false
		}
	}
	return uint32(v), true
}

// asnParam resolves the {asn} path value to an interned position,
// writing the error response when it is absent or malformed.
func (d *Data) asnParam(w http.ResponseWriter, r *http.Request) (uint32, int32, bool) {
	asn, ok := parseASN(r.PathValue("asn"))
	if !ok {
		writeError(w, http.StatusBadRequest, "bad AS number")
		return 0, 0, false
	}
	pos, ok := d.idx.Pos(asn)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("AS%d not observed", asn))
		return 0, 0, false
	}
	return asn, pos, true
}

// handleASN is the zero-allocation point lookup: parse, probe, write
// pre-serialized bytes. The error paths (asnParam) allocate their
// responses; the success path is pinned by AllocsPerRun.
//
//asrank:hotpath
func (d *Data) handleASN(w http.ResponseWriter, r *http.Request) {
	_, pos, ok := d.asnParam(w, r)
	if !ok {
		return
	}
	if d.notModified(w, r) {
		return
	}
	d.writeHot(w, r, d.summaryJSON[pos])
}

// coneContainsBufPool recycles the small response staging buffers of
// the membership probe, keeping its steady state allocation-free.
var coneContainsBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 96)
	return &b
}}

// handleConeContains answers "is member inside asn's customer cone" as
// a two-probe bitset lookup. Unknown member ASes are a valid query
// (answer: false), unlike an unknown subject AS (404).
//
//asrank:hotpath
func (d *Data) handleConeContains(w http.ResponseWriter, r *http.Request) {
	asn, _, ok := d.asnParam(w, r)
	if !ok {
		return
	}
	member, ok := parseASN(r.PathValue("member"))
	if !ok {
		writeError(w, http.StatusBadRequest, "bad member AS number")
		return
	}
	if d.notModified(w, r) {
		return
	}
	bp := coneContainsBufPool.Get().(*[]byte)
	defer coneContainsBufPool.Put(bp)
	b := (*bp)[:0]
	b = append(b, `{"asn":`...)
	b = strconv.AppendUint(b, uint64(asn), 10)
	b = append(b, `,"member":`...)
	b = strconv.AppendUint(b, uint64(member), 10)
	b = append(b, `,"contains":`...)
	b = strconv.AppendBool(b, d.ConeContains(asn, member))
	b = append(b, '}')
	*bp = b
	d.setHot(w.Header())
	if _, err := w.Write(b); err != nil {
		writeFailures.Inc()
	}
}

func (d *Data) handleLinks(w http.ResponseWriter, r *http.Request) {
	_, pos, ok := d.asnParam(w, r)
	if !ok {
		return
	}
	if d.notModified(w, r) {
		return
	}
	out := d.links[pos]
	if out == nil {
		out = []linkEntry{} // an AS with no links serializes as [], never null
	}
	d.setHot(w.Header())
	writeJSON(w, wantPretty(r), out)
}

// coneResponse is the JSON shape of a cone-membership page.
type coneResponse struct {
	ASN        uint32   `json:"asn"`
	Size       int      `json:"size"`
	Members    []uint32 `json:"members"`
	NextCursor string   `json:"nextCursor,omitempty"`
}

// handleCone lists cone membership, ascending. Large cones can be
// paged with ?limit= and ?cursor= (member offset); the default is the
// whole cone, preserving the v1 shape.
func (d *Data) handleCone(w http.ResponseWriter, r *http.Request) {
	asn, _, ok := d.asnParam(w, r)
	if !ok {
		return
	}
	if d.notModified(w, r) {
		return
	}
	members := d.coneMembers(asn)
	resp := coneResponse{ASN: asn, Size: len(members), Members: members}
	if r.URL.RawQuery != "" {
		q := r.URL.Query()
		limit, err := intParam(q.Get("limit"), 0)
		if err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, "limit must be >= 0")
			return
		}
		offset, err := intParam(q.Get("cursor"), 0)
		if err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, "bad cursor; use the nextCursor of a previous page")
			return
		}
		if offset > len(members) {
			offset = len(members)
		}
		end := len(members)
		if limit > 0 && offset+limit < end {
			end = offset + limit
			resp.NextCursor = strconv.Itoa(end)
		}
		resp.Members = members[offset:end]
	}
	if resp.Members == nil {
		resp.Members = []uint32{}
	}
	d.setHot(w.Header())
	writeJSON(w, wantPretty(r), resp)
}

func intParam(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}
