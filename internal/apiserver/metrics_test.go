package apiserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/obs"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/topology"
	"github.com/asrank-go/asrank/internal/trace"
)

// metricsServer builds a handler over a small simulated topology with
// a fresh, injected registry so counter assertions are exact.
func metricsServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	p := topology.DefaultParams(7)
	p.ASes = 150
	topo := topology.Generate(p)
	opts := bgpsim.DefaultOptions(7)
	opts.NumVPs = 8
	sim, err := bgpsim.Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
	res := core.Infer(clean, core.Options{})
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewHandlerWith(Build(res), reg))
	t.Cleanup(srv.Close)
	return srv, reg
}

func get(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func counterValue(reg *obs.Registry, route, class string) uint64 {
	return reg.CounterVec("asrank_http_requests_total",
		"HTTP requests served, by route pattern and status class.", "route", "class").
		With(route, class).Value()
}

func TestErrorPathsRecordStatusClasses(t *testing.T) {
	srv, reg := metricsServer(t)

	// Bad ASN → 400 on the {asn} route.
	if code := get(t, srv.URL+"/api/v1/asns/notanumber"); code != 400 {
		t.Fatalf("bad ASN status = %d", code)
	}
	// Unknown ASN → 404 on the {asn} route.
	if code := get(t, srv.URL+"/api/v1/asns/4294967294"); code != 404 {
		t.Fatalf("unknown ASN status = %d", code)
	}
	// Bad limit and offset → 400 on the list route.
	for _, q := range []string{"?limit=0", "?limit=notanumber", "?limit=5000", "?offset=-1", "?offset=x"} {
		if code := get(t, srv.URL+"/api/v1/asns"+q); code != 400 {
			t.Fatalf("%s status = %d, want 400", q, code)
		}
	}
	// And two successes for contrast.
	if code := get(t, srv.URL+"/api/v1/asns?limit=3"); code != 200 {
		t.Fatalf("list status = %d", code)
	}
	if code := get(t, srv.URL+"/api/v1/health"); code != 200 {
		t.Fatalf("health status = %d", code)
	}

	if got := counterValue(reg, "/api/v1/asns/{asn}", "4xx"); got != 2 {
		t.Errorf("asns/{asn} 4xx = %d, want 2", got)
	}
	if got := counterValue(reg, "/api/v1/asns", "4xx"); got != 5 {
		t.Errorf("asns 4xx = %d, want 5", got)
	}
	if got := counterValue(reg, "/api/v1/asns", "2xx"); got != 1 {
		t.Errorf("asns 2xx = %d, want 1", got)
	}
	if got := counterValue(reg, "/api/v1/health", "2xx"); got != 1 {
		t.Errorf("health 2xx = %d, want 1", got)
	}

	// The latency histogram saw the same route/class pairs.
	lat := reg.HistogramVec("asrank_http_request_duration_seconds",
		"HTTP request latency, by route pattern and status class.",
		obs.DurationBuckets, "route", "class")
	if got := lat.With("/api/v1/asns/{asn}", "4xx").Count(); got != 2 {
		t.Errorf("latency asns/{asn} 4xx count = %d, want 2", got)
	}
	if got := lat.With("/api/v1/health", "2xx").Count(); got != 1 {
		t.Errorf("latency health 2xx count = %d, want 1", got)
	}

	if errs := obs.Lint(reg.Expose()); len(errs) != 0 {
		t.Fatalf("HTTP metrics exposition invalid: %v", errs)
	}
}

func TestWriteJSONEncodeFailureSendsCleanError(t *testing.T) {
	rr := httptest.NewRecorder()
	writeJSON(rr, false, map[string]any{"bad": make(chan int)}) // unencodable
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	body := rr.Body.String()
	if strings.Contains(body, "{") {
		t.Errorf("client saw partial JSON before the error: %q", body)
	}
	if ct := rr.Header().Get("Content-Type"); strings.Contains(ct, "application/json") {
		t.Errorf("error response mislabeled as JSON (%q)", ct)
	}
}

func TestStatusWriterDefaultsTo200(t *testing.T) {
	rr := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rr}
	sw.Write([]byte("hello"))
	if sw.Status() != 200 || sw.bytes != 5 {
		t.Fatalf("status=%d bytes=%d", sw.Status(), sw.bytes)
	}
	rr = httptest.NewRecorder()
	sw = &statusWriter{ResponseWriter: rr}
	sw.WriteHeader(404)
	sw.WriteHeader(500) // second call must not overwrite
	if sw.Status() != 404 {
		t.Fatalf("status=%d, want 404", sw.Status())
	}
}

// TestFlushThroughMiddlewareStack is the regression test for the
// statusWriter hiding http.Flusher: a streaming handler must be able
// to flush through the full production stack (access log → trace →
// metrics → shed), which requires Unwrap on every wrapping writer so
// http.ResponseController can reach the real connection.
func TestFlushThroughMiddlewareStack(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	tr := trace.New(trace.Options{})
	var flushErr error
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := w.Write([]byte("chunk")); err != nil {
			t.Errorf("write: %v", err)
		}
		flushErr = http.NewResponseController(w).Flush()
	})
	stack := LogRequests(TraceRequests(tr, "/stream", m.Wrap("/stream",
		Shed("/stream", DefaultShedPolicy(), m, inner))))

	rr := httptest.NewRecorder()
	stack.ServeHTTP(rr, httptest.NewRequest("GET", "/stream", nil))
	if flushErr != nil {
		t.Fatalf("flush through middleware stack: %v", flushErr)
	}
	if !rr.Flushed {
		t.Fatal("flush never reached the underlying writer")
	}
	if rr.Body.String() != "chunk" {
		t.Fatalf("body = %q", rr.Body.String())
	}
}

func TestStatusClass(t *testing.T) {
	for code, want := range map[int]string{
		200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 500: "5xx", 99: "other", 600: "other",
	} {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}

// TestMetricsEndToEnd runs the real pipeline against the default
// registry and asserts the full /metrics surface the daemon serves:
// sanitize drop counters, per-inference-step durations, pool task and
// steal counters, and per-route HTTP latency histograms with status
// classes — all in lint-clean Prometheus text format.
func TestMetricsEndToEnd(t *testing.T) {
	p := topology.DefaultParams(19)
	p.ASes = 200
	topo := topology.Generate(p)
	opts := bgpsim.DefaultOptions(19)
	opts.NumVPs = 8
	sim, err := bgpsim.Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Sanitize + infer inside Infer (records sanitize and step metrics),
	// Build (cone + pool metrics), then serve requests through the
	// default-registry handler exactly as asrankd wires it.
	res := core.Infer(sim.Dataset, core.Options{Sanitize: true, Workers: 4})
	data := Build(res)
	srv := httptest.NewServer(LogRequests(NewHandler(data)))
	defer srv.Close()
	for _, path := range []string{"/api/v1/health", "/api/v1/asns?limit=5", "/api/v1/asns/0"} {
		get(t, srv.URL+path)
	}

	// Serve /metrics the way the daemon's debug listener does.
	msrv := httptest.NewServer(obs.Default().Handler())
	defer msrv.Close()
	resp, err := http.Get(msrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type = %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	for _, want := range []string{
		`asrank_sanitize_paths_dropped_total{reason="loop"}`,
		`asrank_sanitize_paths_dropped_total{reason="duplicate"}`,
		"asrank_sanitize_duration_seconds_count",
		`asrank_infer_step_duration_seconds_count{step="sanitize"}`,
		`asrank_infer_step_duration_seconds_count{step="top-down"}`,
		`asrank_infer_step_duration_seconds_count{step="peer-default"}`,
		`asrank_infer_links_labeled_total{step="peer-default"}`,
		"asrank_infer_clique_size",
		`asrank_pool_tasks_total{mode="range"}`,
		"asrank_pool_steals_total",
		"asrank_pool_task_duration_seconds_count",
		`asrank_cone_build_duration_seconds_count{engine="pp"}`,
		`asrank_http_requests_total{route="/api/v1/health",class="2xx"}`,
		`asrank_http_request_duration_seconds_bucket{route="/api/v1/health",class="2xx",le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if errs := obs.Lint(out); len(errs) != 0 {
		t.Fatalf("/metrics exposition invalid: %v", errs)
	}
}
