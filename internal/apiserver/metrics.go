package apiserver

import (
	"log"
	"net/http"
	"strconv"
	"time"

	"github.com/asrank-go/asrank/internal/obs"
	"github.com/asrank-go/asrank/internal/trace"
)

// Metrics records per-route HTTP telemetry: request counts and latency
// histograms labeled by route pattern and status class, plus an
// in-flight gauge. Routes are labeled at registration time (the mux
// pattern), so label cardinality is fixed regardless of request URLs.
type Metrics struct {
	requests  *obs.CounterVec   // route, class
	latency   *obs.HistogramVec // route, class
	inFlight  *obs.Gauge
	shed      *obs.CounterVec // route, reason
	shedQueue *obs.GaugeVec   // route
	// SLO event counters: every wrapped response counts toward
	// sloTotal; server faults (5xx) and shed rejections (429) count
	// toward sloErrors. The availability objective reads both.
	sloTotal  *obs.Counter
	sloErrors *obs.Counter
}

// writeFailures counts response writes the client never received
// (connection gone mid-body). Process-global: write failures are a
// property of the transport, not of any one handler wiring.
var writeFailures = obs.Default().Counter("asrank_http_write_failures_total",
	"Response body writes that failed (client disconnected or transport error).")

// NewMetrics registers (or re-binds, idempotently) the HTTP metric
// families in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		requests: reg.CounterVec("asrank_http_requests_total",
			"HTTP requests served, by route pattern and status class.", "route", "class"),
		latency: reg.HistogramVec("asrank_http_request_duration_seconds",
			"HTTP request latency, by route pattern and status class.",
			obs.DurationBuckets, "route", "class"),
		inFlight: reg.Gauge("asrank_http_in_flight_requests",
			"Requests currently being served."),
		shed: reg.CounterVec("asrank_http_requests_shed_total",
			"Requests rejected by load shedding, by route pattern and reason (queue_full, queue_timeout, canceled).",
			"route", "reason"),
		shedQueue: reg.GaugeVec("asrank_http_shed_queue_depth",
			"Requests waiting for an admission slot, by route pattern.", "route"),
		sloTotal: reg.Counter("asrank_slo_requests_total",
			"Responses counted toward the availability SLO."),
		sloErrors: reg.Counter("asrank_slo_request_errors_total",
			"SLO-burning responses: server faults (5xx) and shed rejections (429)."),
	}
}

// Wrap instruments one route's handler.
func (m *Metrics) Wrap(route string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Inc()
		defer m.inFlight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		class := statusClass(sw.Status())
		m.requests.With(route, class).Inc()
		hist := m.latency.With(route, class)
		// When the request ran under a trace span, stamp the latency
		// bucket with its trace ID — the exemplar a scraper follows from
		// a histogram outlier straight into the flight recorder.
		if span := trace.FromContext(r.Context()); span != nil && span.Trace.IsValid() {
			hist.ObserveExemplar(time.Since(t0).Seconds(), span.Trace.String())
		} else {
			hist.ObserveSince(t0)
		}
		m.sloTotal.Inc()
		if code := sw.Status(); code >= 500 || code == http.StatusTooManyRequests {
			m.sloErrors.Inc()
		}
	})
}

// Objectives returns the declarative SLO set backed by these metrics —
// today a single availability objective (non-error responses over all
// responses) at the given target ratio. Pass the result to
// obs.NewSLOTracker.
func (m *Metrics) Objectives(target float64) []obs.Objective {
	return []obs.Objective{{
		Name:   "api_availability",
		Target: target,
		// Good is derived from two separate atomic reads that race with
		// live traffic: an error counted between them can make errors
		// exceed the earlier total read, and an unsigned subtraction
		// would wrap to a huge value and flip the burn math negative for
		// a window. Saturate at zero instead — momentarily under-counting
		// goodness only ever makes the burn look worse, never hides it.
		Good: func() uint64 {
			total, errors := m.sloTotal.Value(), m.sloErrors.Value()
			if errors >= total {
				return 0
			}
			return total - errors
		},
		Total: func() uint64 { return m.sloTotal.Value() },
	}}
}

// InFlight reports the number of requests currently inside wrapped
// handlers — the drain loop's readback for "is anything still being
// served".
func (m *Metrics) InFlight() float64 {
	if m == nil {
		return 0
	}
	return m.inFlight.Value()
}

// ShedQueueDepth reports the total number of requests waiting for an
// admission slot across all routes — a readiness signal: a deep queue
// means new work will wait or be rejected.
func (m *Metrics) ShedQueueDepth() float64 {
	if m == nil {
		return 0
	}
	return m.shedQueue.Sum()
}

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Unwrap exposes the wrapped writer to http.ResponseController (Go
// 1.20+), so Flusher/ReaderFrom/Hijacker reach streaming handlers
// through the middleware stack instead of being hidden by the
// embedding — without it, a flush through LogRequests or Wrap reports
// http.ErrNotSupported even though the underlying writer flushes fine.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Status returns the response status, defaulting to 200 when the
// handler never called WriteHeader.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// statusClass buckets a status code into 1xx..5xx.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// LogRequests is an access-log middleware that records the status code
// and response size alongside method, path, and latency — replacing
// asrankd's status-blind request logger.
func LogRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		log.Printf("%s %s -> %d (%dB, %s)",
			r.Method, r.URL.Path, sw.Status(), sw.bytes, time.Since(t0).Round(time.Microsecond))
	})
}
