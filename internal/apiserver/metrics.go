package apiserver

import (
	"log"
	"net/http"
	"strconv"
	"time"

	"github.com/asrank-go/asrank/internal/obs"
)

// Metrics records per-route HTTP telemetry: request counts and latency
// histograms labeled by route pattern and status class, plus an
// in-flight gauge. Routes are labeled at registration time (the mux
// pattern), so label cardinality is fixed regardless of request URLs.
type Metrics struct {
	requests *obs.CounterVec   // route, class
	latency  *obs.HistogramVec // route, class
	inFlight *obs.Gauge
}

// NewMetrics registers (or re-binds, idempotently) the HTTP metric
// families in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		requests: reg.CounterVec("asrank_http_requests_total",
			"HTTP requests served, by route pattern and status class.", "route", "class"),
		latency: reg.HistogramVec("asrank_http_request_duration_seconds",
			"HTTP request latency, by route pattern and status class.",
			obs.DurationBuckets, "route", "class"),
		inFlight: reg.Gauge("asrank_http_in_flight_requests",
			"Requests currently being served."),
	}
}

// Wrap instruments one route's handler.
func (m *Metrics) Wrap(route string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Inc()
		defer m.inFlight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		class := statusClass(sw.Status())
		m.requests.With(route, class).Inc()
		m.latency.With(route, class).ObserveSince(t0)
	})
}

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Status returns the response status, defaulting to 200 when the
// handler never called WriteHeader.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// statusClass buckets a status code into 1xx..5xx.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// LogRequests is an access-log middleware that records the status code
// and response size alongside method, path, and latency — replacing
// asrankd's status-blind request logger.
func LogRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		log.Printf("%s %s -> %d (%dB, %s)",
			r.Method, r.URL.Path, sw.Status(), sw.bytes, time.Since(t0).Round(time.Microsecond))
	})
}
