package apiserver

import (
	"net/http"
	"strings"
)

// The ETag scheme is snapshot-wide: every data route carries the same
// strong validator (Data.etag), because every response is a pure
// function of one immutable snapshot. A client that revalidates any
// cached response with If-None-Match gets a body-free 304 until the
// serving snapshot is swapped, at which point the tag changes and
// every cached entry misses together — exactly the invalidation
// granularity an atomically swapped snapshot has.

// headerJSON and headerNoBody are shared header value slices assigned
// by direct map index so the hot handlers never allocate a per-request
// []string. Keys must be in canonical MIME form (as http.Header.Set
// would produce) for the rest of net/http to see them.
var headerJSON = []string{"application/json"}

// setHot stamps the alloc-free response headers for a pre-serialized
// body: content type plus the snapshot validator.
//
//asrank:hotpath
func (d *Data) setHot(h http.Header) {
	h["Content-Type"] = headerJSON
	h["Etag"] = d.etagHeader
}

// notModified answers a conditional request: when If-None-Match
// matches the snapshot tag it writes a body-free 304 (with the tag, so
// caches refresh their metadata) and reports true. Allocation-free.
//
//asrank:hotpath
func (d *Data) notModified(w http.ResponseWriter, r *http.Request) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" || !etagMatch(inm, d.etag) {
		return false
	}
	w.Header()["Etag"] = d.etagHeader
	w.WriteHeader(http.StatusNotModified)
	return true
}

// etagMatch implements the If-None-Match comparison: a literal *, or
// any member of the comma-separated tag list equal to etag. Weak
// validators (W/ prefix) compare by the weak rule, i.e. the W/ is
// ignored — correct for GET revalidation. Substring operations only;
// no allocation.
//
//asrank:hotpath
func etagMatch(inm, etag string) bool {
	if inm == "*" {
		return true
	}
	for inm != "" {
		for len(inm) > 0 && (inm[0] == ' ' || inm[0] == '\t' || inm[0] == ',') {
			inm = inm[1:]
		}
		tag := inm
		if i := strings.IndexByte(inm, ','); i >= 0 {
			tag, inm = inm[:i], inm[i+1:]
		} else {
			inm = ""
		}
		tag = strings.TrimPrefix(strings.TrimSpace(tag), "W/")
		if tag == etag {
			return true
		}
	}
	return false
}
