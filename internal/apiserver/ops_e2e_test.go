package apiserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/asrank-go/asrank/internal/obs"
	"github.com/asrank-go/asrank/internal/oplog"
	"github.com/asrank-go/asrank/internal/trace"
)

// exemplarRe matches a latency bucket carrying an exemplar and captures
// the 32-hex trace ID. Route labels contain braces ("/asns/{asn}"), so
// the label set is matched lazily up to the exemplar marker.
var exemplarRe = regexp.MustCompile(
	`(?m)^asrank_http_request_duration_seconds_bucket\{.+ # \{trace_id="([0-9a-f]{32})"\}`)

// TestExemplarResolvesToFlightRecorder is the exemplar acceptance
// proof: a traced request leaves a trace ID on its latency bucket, the
// exposition stays valid under the strict linter with the exemplar
// present, and the ID resolves — the same trace the client saw in its
// traceparent response header is findable in the flight recorder, so
// an operator can walk from a histogram outlier to the spans that
// caused it.
func TestExemplarResolvesToFlightRecorder(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	reg := obs.NewRegistry()
	tracer := trace.New(trace.Options{})
	srv := httptest.NewServer(NewServer(d, Config{Registry: reg, Tracer: tracer, Shed: DefaultShedPolicy()}))
	t.Cleanup(srv.Close)

	resp := fetch(t, srv.URL+"/api/v1/asns/"+itoa(res.Clique[0]), nil)
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// The trace ID the client observed: traceparent is
	// version-traceID-spanID-flags.
	parts := strings.Split(resp.Header.Get("traceparent"), "-")
	if len(parts) != 4 {
		t.Fatalf("traceparent = %q", resp.Header.Get("traceparent"))
	}
	clientTrace := parts[1]

	// The exemplar is stamped after the handler returns and the span is
	// published after that, so poll briefly rather than racing the
	// middleware tail.
	var exemplarTrace string
	deadline := time.Now().Add(5 * time.Second)
	for exemplarTrace == "" {
		if m := exemplarRe.FindStringSubmatch(reg.ExposeOpenMetrics()); m != nil {
			exemplarTrace = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no exemplar appeared on any latency bucket")
		}
		time.Sleep(time.Millisecond)
	}
	if exemplarTrace != clientTrace {
		t.Fatalf("exemplar trace %s != client-observed trace %s", exemplarTrace, clientTrace)
	}

	// The ID resolves: the flight recorder holds the request's span.
	resolved := false
	for !resolved {
		for _, s := range tracer.Flight() {
			if s.Trace.String() == exemplarTrace {
				resolved = true
				break
			}
		}
		if resolved {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s not found in the flight recorder", exemplarTrace)
		}
		time.Sleep(time.Millisecond)
	}

	// Exemplars must not cost exposition validity: the OpenMetrics
	// variant carries them and still lints, while the classic 0.0.4
	// scrape — whose parser rejects exemplar tokens — stays free of
	// them entirely.
	exposed := reg.ExposeOpenMetrics()
	if !strings.Contains(exposed, `# {trace_id="`) {
		t.Fatal("OpenMetrics exposition lost its exemplar")
	}
	if errs := obs.Lint(exposed); len(errs) != 0 {
		t.Fatalf("exposition invalid with exemplars: %v", errs)
	}
	classic := reg.Expose()
	if strings.Contains(classic, `# {trace_id="`) {
		t.Fatal("classic 0.0.4 exposition carries an exemplar")
	}
	if errs := obs.Lint(classic); len(errs) != 0 {
		t.Fatalf("classic exposition invalid: %v", errs)
	}
}

// TestReadyzUnderShedStorm is the readiness acceptance proof: the
// replica walks unready → ready → degraded → ready end to end. The
// degradation is real — slow clients pin the admission gate, honest
// clients get shed with 429s, the SLO tracker sees the error-budget
// burn, and the burn check flips /readyz to 503 — and so is the
// recovery, with every transition journaled. SLO sampling is driven
// manually with a synthetic clock so the burn math is deterministic.
func TestReadyzUnderShedStorm(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	journal := oplog.New(oplog.Options{RingSize: 128})
	health := NewHealth(journal)

	const window = time.Minute
	slo := obs.NewSLOTracker(reg, []time.Duration{window}, m.Objectives(0.999)...)
	health.AddCheck("slo_burn", func() (bool, string) {
		if b := slo.MaxBurn(window); b > 10 {
			return false, fmt.Sprintf("burn rate %.1f over threshold 10", b)
		}
		return true, ""
	})

	// The asrankd wiring in miniature: health endpoints beside the shed
	// data routes, one slot and a one-deep queue so two slow clients
	// constitute a storm.
	shed := ShedPolicy{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 30 * time.Second, RetryAfter: 1 * time.Second}
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", health.Healthz())
	mux.Handle("GET /readyz", health.Readyz())
	mux.Handle("/", NewServer(d, Config{Registry: reg, Metrics: m, Shed: shed}))
	srv := httptest.NewUnstartedServer(mux)
	srv.Listener = slowClientListener{srv.Listener}
	srv.Start()
	t.Cleanup(srv.Close)

	readyz := func() (int, string) {
		t.Helper()
		resp := fetch(t, srv.URL+"/readyz", nil)
		var body struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Status
	}

	// Unready until the first snapshot lands; liveness is already green.
	if code, status := readyz(); code != 503 || status != StateUnready {
		t.Fatalf("before publish: readyz = %d %q", code, status)
	}
	if code := fetch(t, srv.URL+"/healthz", nil).StatusCode; code != 200 {
		t.Fatalf("healthz = %d", code)
	}

	// First publish: baseline SLO sample, then mark ready.
	base := time.Now()
	slo.Sample(base)
	health.MarkReady()
	if code, status := readyz(); code != 200 || status != StateReady {
		t.Fatalf("after publish: readyz = %d %q", code, status)
	}

	// The storm: one slow client holds the only slot, a second fills
	// the queue, and every honest request after that burns budget.
	slowGet := func() net.Conn {
		conn, err := net.Dial("tcp", srv.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetReadBuffer(4 << 10)
		}
		req := "GET /api/v1/asns?limit=1000&pretty=1 HTTP/1.1\r\nHost: ops\r\n\r\n"
		if _, err := io.WriteString(conn, req); err != nil {
			t.Fatal(err)
		}
		return conn
	}
	c1 := slowGet()
	c2 := slowGet()
	defer c1.Close()
	defer c2.Close()
	pinDeadline := time.Now().Add(10 * time.Second)
	for m.shedQueue.With("/api/v1/asns").Value() < 1 {
		if time.Now().After(pinDeadline) {
			t.Fatal("slow clients never pinned the admission gate")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		resp := fetch(t, srv.URL+"/api/v1/asns?limit=1000", nil)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("storm request %d status = %d, want 429", i, resp.StatusCode)
		}
	}

	// Sample mid-storm: 5 errors over 5 SLO events in the window is a
	// 100% error ratio — burn 1000 at a 99.9% target, far past the
	// threshold, so the replica reports degraded with the check named.
	slo.Sample(base.Add(10 * time.Second))
	if code, status := readyz(); code != 503 || status != StateDegraded {
		t.Fatalf("mid-storm: readyz = %d %q, want 503 degraded", code, status)
	}
	if code := fetch(t, srv.URL+"/healthz", nil).StatusCode; code != 200 {
		t.Fatalf("healthz during storm = %d (liveness must not follow readiness)", code)
	}

	// Storm ends: the slow clients hang up, the slot frees, traffic
	// succeeds again.
	c1.Close()
	c2.Close()
	recovered := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp := fetch(t, srv.URL+"/api/v1/asns?limit=1000", nil)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == 200 {
			recovered = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("gate never recovered after slow clients disconnected")
	}

	// Close the storm epoch with a sample, then demonstrate a clean
	// window: only successes land between the next two samples, spaced
	// so the storm's errors age past the window baseline.
	slo.Sample(base.Add(90 * time.Second))
	for i := 0; i < 3; i++ {
		resp := fetch(t, srv.URL+"/api/v1/clique", nil)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("post-storm request status = %d", resp.StatusCode)
		}
	}
	slo.Sample(base.Add(160 * time.Second))
	if code, status := readyz(); code != 200 || status != StateReady {
		t.Fatalf("after recovery: readyz = %d %q, want 200 ready", code, status)
	}

	// Every transition was journaled, in order.
	var transitions []string
	for _, ev := range journal.Recent() {
		if ev.Name != "health.state" {
			continue
		}
		var from, to string
		for _, a := range ev.Attrs {
			switch a.Key {
			case "from":
				from = a.Str
			case "to":
				to = a.Str
			}
		}
		transitions = append(transitions, from+">"+to)
	}
	want := []string{"unready>ready", "ready>degraded", "degraded>ready"}
	if len(transitions) != len(want) {
		t.Fatalf("journaled transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}

	// The whole episode left a lintable exposition: burn-rate gauges,
	// shed counters, SLO counters.
	exposed := reg.Expose()
	for _, fam := range []string{"asrank_slo_burn_rate", "asrank_slo_requests_total", "asrank_http_requests_shed_total"} {
		if !strings.Contains(exposed, fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
	if errs := obs.Lint(exposed); len(errs) != 0 {
		t.Fatalf("exposition invalid after storm: %v", errs)
	}
}
