package apiserver

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/asrank-go/asrank/internal/obs"
)

// e2eServer serves a built snapshot through the full production stack
// (trace off, metrics + shedding on) against a fresh registry.
func e2eServer(t *testing.T, d *Data, shed ShedPolicy) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewServer(d, Config{Registry: reg, Shed: shed}))
	t.Cleanup(srv.Close)
	return srv, reg
}

func fetch(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestReadPathAcceptance is the end-to-end gate for the serving
// rebuild: every data route carries the snapshot ETag, revalidation
// returns body-free 304s, the tag changes when the snapshot does, and
// responses are compact by default with ?pretty=1 opt-in.
func TestReadPathAcceptance(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	srv, _ := e2eServer(t, d, DefaultShedPolicy())
	top := itoa(res.Clique[0])

	routes := []string{
		"/api/v1/clique",
		"/api/v1/asns",
		"/api/v1/asns/" + top,
		"/api/v1/asns/" + top + "/links",
		"/api/v1/asns/" + top + "/cone",
		"/api/v1/asns/" + top + "/cone/contains/" + top,
	}
	for _, route := range routes {
		resp := fetch(t, srv.URL+route, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("%s status = %d", route, resp.StatusCode)
		}
		etag := resp.Header.Get("ETag")
		if etag != d.ETag() {
			t.Fatalf("%s ETag = %q, want %q", route, etag, d.ETag())
		}
		body, _ := io.ReadAll(resp.Body)
		if strings.Contains(string(body), "\n  ") {
			t.Errorf("%s body indented without ?pretty=1", route)
		}

		// Revalidation: matching If-None-Match gets a body-free 304.
		cond := fetch(t, srv.URL+route, map[string]string{"If-None-Match": etag})
		if cond.StatusCode != http.StatusNotModified {
			t.Fatalf("%s conditional status = %d, want 304", route, cond.StatusCode)
		}
		condBody, _ := io.ReadAll(cond.Body)
		if len(condBody) != 0 {
			t.Errorf("%s 304 carried a %dB body", route, len(condBody))
		}
		if cond.Header.Get("ETag") != etag {
			t.Errorf("%s 304 lost the ETag", route)
		}

		// A stale validator misses and gets the full 200.
		stale := fetch(t, srv.URL+route, map[string]string{"If-None-Match": `"deadbeef"`})
		if stale.StatusCode != 200 {
			t.Errorf("%s stale-tag status = %d, want 200", route, stale.StatusCode)
		}
	}

	// Health always answers with a body, even conditionally: liveness.
	h := fetch(t, srv.URL+"/api/v1/health", map[string]string{"If-None-Match": d.ETag()})
	if h.StatusCode != 200 {
		t.Errorf("health conditional status = %d, want 200", h.StatusCode)
	}

	// A different snapshot produces a different validator, so clients
	// revalidating against the old tag get fresh bodies.
	d2 := Build(inferSeed(t, 82, 310))
	srv2, _ := e2eServer(t, d2, DefaultShedPolicy())
	resp := fetch(t, srv2.URL+"/api/v1/asns", map[string]string{"If-None-Match": d.ETag()})
	if resp.StatusCode != 200 {
		t.Fatalf("cross-snapshot conditional status = %d, want 200 (tags must differ)", resp.StatusCode)
	}

	// ?pretty=1 opts into indentation; Content-Length matches.
	pretty := fetch(t, srv.URL+"/api/v1/asns/"+top+"?pretty=1", nil)
	pbody, _ := io.ReadAll(pretty.Body)
	if !strings.Contains(string(pbody), "\n  ") {
		t.Error("?pretty=1 body not indented")
	}
	var sum asnSummary
	if err := json.Unmarshal(pbody, &sum); err != nil {
		t.Fatalf("pretty body does not parse: %v", err)
	}
	compact := fetch(t, srv.URL+"/api/v1/asns/"+top, nil)
	cbody, _ := io.ReadAll(compact.Body)
	if len(cbody) >= len(pbody) {
		t.Errorf("compact (%dB) not smaller than pretty (%dB)", len(cbody), len(pbody))
	}
}

// TestBulkAndCursorPagination covers the two new listing modes.
func TestBulkAndCursorPagination(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	srv, _ := e2eServer(t, d, DefaultShedPolicy())

	// Cursor walk: pages chain through nextCursor and cover the
	// ranking exactly once, in rank order.
	var walked []uint32
	cursor := ""
	for hops := 0; ; hops++ {
		if hops > len(d.rank) {
			t.Fatal("cursor walk does not terminate")
		}
		url := srv.URL + "/api/v1/asns?limit=37"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var page struct {
			Total      int          `json:"total"`
			Data       []asnSummary `json:"data"`
			NextCursor string       `json:"nextCursor"`
		}
		resp := fetch(t, url, nil)
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		if page.Total != len(d.rank) {
			t.Fatalf("total = %d, want %d", page.Total, len(d.rank))
		}
		for _, s := range page.Data {
			walked = append(walked, s.ASN)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(walked) != len(d.rank) {
		t.Fatalf("cursor walk visited %d of %d ASes", len(walked), len(d.rank))
	}
	for i, asn := range walked {
		if asn != d.rank[i] {
			t.Fatalf("cursor walk out of rank order at %d: %d vs %d", i, asn, d.rank[i])
		}
	}

	// Bulk: request order preserved, unknown ids split out, never null.
	known1, known2 := itoa(d.rank[0]), itoa(d.rank[1])
	resp := fetch(t, srv.URL+"/api/v1/asns?ids="+known1+",4294967294,"+known2, nil)
	var bulk struct {
		Data    []asnSummary `json:"data"`
		Missing []uint32     `json:"missing"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&bulk); err != nil {
		t.Fatal(err)
	}
	if len(bulk.Data) != 2 || bulk.Data[0].ASN != d.rank[0] || bulk.Data[1].ASN != d.rank[1] {
		t.Errorf("bulk data = %+v", bulk.Data)
	}
	if len(bulk.Missing) != 1 || bulk.Missing[0] != 4294967294 {
		t.Errorf("bulk missing = %v", bulk.Missing)
	}
	// Malformed id → 400.
	if code := fetch(t, srv.URL+"/api/v1/asns?ids=1,x", nil).StatusCode; code != 400 {
		t.Errorf("bad ids status = %d, want 400", code)
	}

	// Empty bulk results serialize as [], never null.
	resp = fetch(t, srv.URL+"/api/v1/asns?ids=4294967294", nil)
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), `"data":[]`) {
		t.Errorf("empty bulk data not []: %s", raw)
	}
}

// TestConeContainsEndpoint covers the bitset probe route.
func TestConeContainsEndpoint(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	srv, _ := e2eServer(t, d, DefaultShedPolicy())
	top := res.Clique[0]

	var member uint32
	for _, m := range d.coneMembers(top) {
		if m != top {
			member = m
			break
		}
	}
	if member == 0 {
		t.Skip("clique member with a singleton cone")
	}

	var probe struct {
		ASN      uint32 `json:"asn"`
		Member   uint32 `json:"member"`
		Contains bool   `json:"contains"`
	}
	resp := fetch(t, srv.URL+"/api/v1/asns/"+itoa(top)+"/cone/contains/"+itoa(member), nil)
	if err := json.NewDecoder(resp.Body).Decode(&probe); err != nil {
		t.Fatal(err)
	}
	if !probe.Contains || probe.ASN != top || probe.Member != member {
		t.Errorf("probe = %+v, want contains=true", probe)
	}

	// An unknown member is a valid query with answer false.
	resp = fetch(t, srv.URL+"/api/v1/asns/"+itoa(top)+"/cone/contains/4294967294", nil)
	if err := json.NewDecoder(resp.Body).Decode(&probe); err != nil {
		t.Fatal(err)
	}
	if probe.Contains {
		t.Error("unknown member reported in cone")
	}
	// An unknown subject is 404; a malformed member 400.
	if code := fetch(t, srv.URL+"/api/v1/asns/4294967294/cone/contains/1", nil).StatusCode; code != 404 {
		t.Errorf("unknown subject status = %d, want 404", code)
	}
	if code := fetch(t, srv.URL+"/api/v1/asns/"+itoa(top)+"/cone/contains/x", nil).StatusCode; code != 400 {
		t.Errorf("bad member status = %d, want 400", code)
	}
}

// TestLinksNeverNull: an AS whose links row is empty serializes as [].
func TestLinksNeverNull(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	// Every interned AS has at least one link by construction, so force
	// the edge case the normalization guards: a nil row.
	pos := d.rankPos[0]
	saved := d.links[pos]
	d.links[pos] = nil
	defer func() { d.links[pos] = saved }()
	srv, _ := e2eServer(t, d, DefaultShedPolicy())
	resp := fetch(t, srv.URL+"/api/v1/asns/"+itoa(d.rank[0])+"/links", nil)
	raw, _ := io.ReadAll(resp.Body)
	if got := strings.TrimSpace(string(raw)); got != "[]" {
		t.Errorf("empty links = %q, want []", got)
	}
}

// slowClientListener shrinks each accepted connection's kernel send
// buffer so a client that stops reading makes the handler block in
// Write — the real mechanism by which slow clients pin server slots.
type slowClientListener struct{ net.Listener }

func (l slowClientListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if tc, ok := c.(*net.TCPConn); err == nil && ok {
		tc.SetWriteBuffer(4 << 10)
	}
	return c, err
}

// TestShedVisibleEndToEnd drives the full server into overload the way
// production gets there — slow clients that request large pages and
// never read, pinning the route's admission slot and queue — then
// asserts the next client is shed with 429 + Retry-After, the
// rejection is visible in asrank_http_requests_total and
// asrank_http_requests_shed_total, and the route recovers once the
// slow clients are gone. Deterministic on any core count: the hold is
// a blocked socket write, not a scheduling race.
func TestShedVisibleEndToEnd(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	shed := ShedPolicy{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 30 * time.Second, RetryAfter: 2 * time.Second}
	srv := httptest.NewUnstartedServer(NewServer(d, Config{Registry: reg, Shed: shed}))
	srv.Listener = slowClientListener{srv.Listener}
	srv.Start()
	t.Cleanup(srv.Close)

	// slowGet asks for an indented full page (far larger than the
	// socket buffers) and never reads the response.
	slowGet := func() net.Conn {
		conn, err := net.Dial("tcp", srv.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetReadBuffer(4 << 10)
		}
		req := "GET /api/v1/asns?limit=1000&pretty=1 HTTP/1.1\r\nHost: e2e\r\n\r\n"
		if _, err := io.WriteString(conn, req); err != nil {
			t.Fatal(err)
		}
		return conn
	}
	c1 := slowGet() // blocks in Write, holding the only slot
	c2 := slowGet() // waits in the one-deep queue
	defer c1.Close()
	defer c2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for m.shedQueue.With("/api/v1/asns").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow clients never pinned the admission gate")
		}
		time.Sleep(time.Millisecond)
	}

	// Slot and queue both pinned: a well-behaved client is rejected
	// immediately instead of waiting behind the slow ones.
	resp := fetch(t, srv.URL+"/api/v1/asns?limit=1000", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("429 Retry-After = %q, want 2", got)
	}
	var errBody struct{ Error, Reason string }
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatalf("429 body: %v", err)
	}
	if errBody.Error != "overloaded" || errBody.Reason != "queue_full" {
		t.Errorf("429 body = %+v", errBody)
	}

	// The rejection shows up in the families asrankd exposes.
	if got := counterValue(reg, "/api/v1/asns", "4xx"); got != 1 {
		t.Errorf("requests_total 4xx = %d, want 1", got)
	}
	if got := m.shed.With("/api/v1/asns", "queue_full").Value(); got != 1 {
		t.Errorf("shed queue_full = %d, want 1", got)
	}
	exposed := reg.Expose()
	if !strings.Contains(exposed, "asrank_http_requests_shed_total") {
		t.Error("shed counter missing from exposition")
	}
	if errs := obs.Lint(exposed); len(errs) != 0 {
		t.Fatalf("exposition invalid under load: %v", errs)
	}

	// Hang up the slow clients: their blocked writes fail, the slot
	// frees, and the gate recovers.
	c1.Close()
	c2.Close()
	recovered := false
	for deadline = time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp := fetch(t, srv.URL+"/api/v1/asns?limit=1000", nil)
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == 200 {
			recovered = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("gate never recovered after slow clients disconnected")
	}
	if got := counterValue(reg, "/api/v1/asns", "2xx"); got == 0 {
		t.Error("recovered 200 not counted in requests_total")
	}
}

// nullWriter is the minimal ResponseWriter the alloc measurements
// write into: a reusable header map and a byte-count sink.
type nullWriter struct {
	h http.Header
	n int
}

func (w *nullWriter) Header() http.Header { return w.h }
func (w *nullWriter) Write(b []byte) (int, error) {
	w.n += len(b)
	return len(b), nil
}
func (w *nullWriter) WriteHeader(int) {}

// TestPointLookupZeroAlloc pins the acceptance criterion: the
// steady-state point lookup allocates nothing — for fresh 200s, for
// 304 revalidations, and for cone membership probes.
func TestPointLookupZeroAlloc(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	top := itoa(res.Clique[0])

	req := httptest.NewRequest("GET", "/api/v1/asns/"+top, nil)
	req.SetPathValue("asn", top)
	w := &nullWriter{h: make(http.Header)}
	d.handleASN(w, req) // warm the header map and buffer pools
	if w.n == 0 {
		t.Fatal("handler wrote nothing")
	}
	if allocs := testing.AllocsPerRun(200, func() { d.handleASN(w, req) }); allocs != 0 {
		t.Errorf("point lookup allocates %.1f/op, want 0", allocs)
	}

	cond := httptest.NewRequest("GET", "/api/v1/asns/"+top, nil)
	cond.SetPathValue("asn", top)
	cond.Header.Set("If-None-Match", d.ETag())
	d.handleASN(w, cond)
	if allocs := testing.AllocsPerRun(200, func() { d.handleASN(w, cond) }); allocs != 0 {
		t.Errorf("304 revalidation allocates %.1f/op, want 0", allocs)
	}

	probe := httptest.NewRequest("GET", "/api/v1/asns/"+top+"/cone/contains/"+top, nil)
	probe.SetPathValue("asn", top)
	probe.SetPathValue("member", top)
	d.handleConeContains(w, probe)
	if allocs := testing.AllocsPerRun(200, func() { d.handleConeContains(w, probe) }); allocs != 0 {
		t.Errorf("cone probe allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkPointLookup measures the snapshot point-lookup handler in
// isolation (the transport-independent cost a tuned server pays).
func BenchmarkPointLookup(b *testing.B) {
	res := inferSeed(b, 81, 300)
	d := Build(res)
	top := itoa(res.Clique[0])
	req := httptest.NewRequest("GET", "/api/v1/asns/"+top, nil)
	req.SetPathValue("asn", top)
	w := &nullWriter{h: make(http.Header)}
	d.handleASN(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.handleASN(w, req)
	}
}

// BenchmarkConeContains measures the bitset membership probe.
func BenchmarkConeContains(b *testing.B) {
	res := inferSeed(b, 81, 300)
	d := Build(res)
	top := itoa(res.Clique[0])
	req := httptest.NewRequest("GET", "/api/v1/asns/"+top+"/cone/contains/"+top, nil)
	req.SetPathValue("asn", top)
	req.SetPathValue("member", top)
	w := &nullWriter{h: make(http.Header)}
	d.handleConeContains(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.handleConeContains(w, req)
	}
}
