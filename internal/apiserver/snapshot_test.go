package apiserver

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/cone"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/topology"
)

// inferSeed runs the pipeline on a small simulated topology.
func inferSeed(t testing.TB, seed int64, ases int) *core.Result {
	t.Helper()
	p := topology.DefaultParams(seed)
	p.ASes = ases
	topo := topology.Generate(p)
	opts := bgpsim.DefaultOptions(seed)
	opts.NumVPs = 10
	sim, err := bgpsim.Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
	return core.Infer(clean, core.Options{})
}

// TestSnapshotMatchesNaiveComputation pins the precomputed summaries
// against the quantities computed the slow way the old per-request
// code did: cone-prefix sums by walking the cone map, neighbor counts
// by scanning the full relationship map.
func TestSnapshotMatchesNaiveComputation(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)

	rels := cone.NewRelations(res.Rels)
	sets := rels.ProviderPeerObserved(res.Dataset)
	prefixes := cone.PrefixCounts(res.Dataset)

	checked := 0
	for _, asn := range d.rank {
		sum, ok := d.Summary(asn)
		if !ok {
			t.Fatalf("AS%d ranked but has no summary", asn)
		}
		wantPfx := 0
		for member := range sets[asn] {
			wantPfx += prefixes[member]
		}
		if sum.ConePrefixes != wantPfx {
			t.Errorf("AS%d conePrefixes = %d, want %d", asn, sum.ConePrefixes, wantPfx)
		}
		if sum.ConeASes != len(sets[asn]) {
			t.Errorf("AS%d coneASes = %d, want %d", asn, sum.ConeASes, len(sets[asn]))
		}
		if want := len(res.Providers(asn)); sum.Providers != want {
			t.Errorf("AS%d providers = %d, want %d", asn, sum.Providers, want)
		}
		if want := len(res.Customers(asn)); sum.Customers != want {
			t.Errorf("AS%d customers = %d, want %d", asn, sum.Customers, want)
		}
		if want := len(res.Peers(asn)); sum.Peers != want {
			t.Errorf("AS%d peers = %d, want %d", asn, sum.Peers, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no ranked ASes checked")
	}
}

// TestSnapshotLinksMatchResult pins the precomputed neighbor lists
// against the result's per-AS scans.
func TestSnapshotLinksMatchResult(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	top := res.Clique[0]
	pos, ok := d.idx.Pos(top)
	if !ok {
		t.Fatalf("clique member %d not interned", top)
	}
	byRel := map[string]int{}
	for i, l := range d.links[pos] {
		byRel[l.Relationship]++
		if i > 0 && d.links[pos][i-1].Neighbor >= l.Neighbor {
			t.Fatalf("links not sorted ascending at %d", i)
		}
		if l.Step == "" || l.Step == "none" {
			t.Errorf("link %d has no provenance: %+v", i, l)
		}
	}
	if byRel["provider"] != len(res.Providers(top)) ||
		byRel["customer"] != len(res.Customers(top)) ||
		byRel["peer"] != len(res.Peers(top)) {
		t.Errorf("link roles %v disagree with result scans (%d/%d/%d)", byRel,
			len(res.Providers(top)), len(res.Customers(top)), len(res.Peers(top)))
	}
}

// TestETagStableAndSnapshotSensitive: two builds of the same result
// carry the same validator; a different corpus carries a different one.
func TestETagStableAndSnapshotSensitive(t *testing.T) {
	res := inferSeed(t, 81, 300)
	a, b := Build(res), Build(res)
	if a.ETag() == "" || a.ETag()[0] != '"' {
		t.Fatalf("ETag %q not a quoted validator", a.ETag())
	}
	if a.ETag() != b.ETag() {
		t.Errorf("same result, different ETags: %s vs %s", a.ETag(), b.ETag())
	}
	other := Build(inferSeed(t, 82, 310))
	if other.ETag() == a.ETag() {
		t.Errorf("different snapshots share ETag %s", a.ETag())
	}
}

// TestNilCliqueSerializesAsEmptyArray: a result with no clique must
// serve "clique":[] (never null) in health and [] from /clique.
func TestNilCliqueSerializesAsEmptyArray(t *testing.T) {
	res := inferSeed(t, 81, 300)
	res.Clique = nil
	d := Build(res)
	if !bytes.Contains(d.healthJSON, []byte(`"clique":[]`)) {
		t.Errorf("health JSON = %s, want clique:[]", d.healthJSON)
	}
	if string(d.cliqueJSON) != "[]" {
		t.Errorf("clique JSON = %s, want []", d.cliqueJSON)
	}
}

// TestSummaryJSONCompact: pre-serialized summaries are compact (no
// indentation — the old server double-indented everything) and decode
// back to the summary they were built from.
func TestSummaryJSONCompact(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	for i, raw := range d.summaryJSON {
		if bytes.ContainsAny(raw, "\n ") {
			t.Fatalf("summary %d not compact: %q", i, raw)
		}
		var sum asnSummary
		if err := json.Unmarshal(raw, &sum); err != nil {
			t.Fatalf("summary %d: %v", i, err)
		}
		if sum != d.summaries[i] {
			t.Fatalf("summary %d round-trip mismatch: %+v vs %+v", i, sum, d.summaries[i])
		}
	}
}

// TestConeContains probes the bitset path against the materialized
// cone sets.
func TestConeContains(t *testing.T) {
	res := inferSeed(t, 81, 300)
	d := Build(res)
	sets := cone.NewRelations(res.Rels).ProviderPeerObserved(res.Dataset)
	top := res.Clique[0]
	for member := range sets[top] {
		if !d.ConeContains(top, member) {
			t.Errorf("AS%d should contain AS%d", top, member)
		}
	}
	if !d.ConeContains(top, top) {
		t.Error("an AS is always in its own cone")
	}
	if d.ConeContains(top, 4294967294) {
		t.Error("unknown member reported in cone")
	}
}
