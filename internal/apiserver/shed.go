package apiserver

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// ShedPolicy bounds what one route may consume. The server degrades
// instead of collapsing: up to MaxConcurrent requests run, up to
// MaxQueue more wait at most QueueTimeout for a slot, and everything
// beyond that is rejected immediately — 429 when the queue is full
// (the client is sending too fast), 503 when a queued request's wait
// timed out (the server is too slow right now). Both carry Retry-After
// so well-behaved clients back off instead of retry-storming.
type ShedPolicy struct {
	// MaxConcurrent is the number of in-flight requests a heavy route
	// admits; cheap point-lookup routes admit pointLookupFactor times
	// as many. <= 0 disables shedding on the route.
	MaxConcurrent int
	// MaxQueue is how many requests beyond MaxConcurrent may wait for
	// a slot; defaults to 2*MaxConcurrent when 0.
	MaxQueue int
	// QueueTimeout caps how long a queued request waits; defaults to
	// 250ms when 0.
	QueueTimeout time.Duration
	// RetryAfter is the backoff hint on 429/503 responses; defaults to
	// 1s when 0 (rounded up to whole seconds, minimum 1).
	RetryAfter time.Duration
}

// pointLookupFactor scales the concurrency limit for routes that serve
// pre-serialized bytes (point lookups, cone probes, health): they
// finish orders of magnitude faster than page assembly, so one slot of
// budget admits many more of them.
const pointLookupFactor = 4

// DefaultShedPolicy is tuned for a single asrankd replica: enough
// parallelism to saturate cores on page assembly without letting a
// burst queue unboundedly.
func DefaultShedPolicy() ShedPolicy {
	return ShedPolicy{
		MaxConcurrent: 64,
		MaxQueue:      128,
		QueueTimeout:  250 * time.Millisecond,
		RetryAfter:    time.Second,
	}
}

func (p ShedPolicy) withDefaults() ShedPolicy {
	if p.MaxQueue <= 0 {
		p.MaxQueue = 2 * p.MaxConcurrent
	}
	if p.QueueTimeout <= 0 {
		p.QueueTimeout = 250 * time.Millisecond
	}
	if p.RetryAfter <= 0 {
		p.RetryAfter = time.Second
	}
	return p
}

// scaled returns the policy with its concurrency and queue limits
// multiplied by factor (for the cheap point-lookup routes).
func (p ShedPolicy) scaled(factor int) ShedPolicy {
	p.MaxConcurrent *= factor
	p.MaxQueue *= factor
	return p
}

// shedder is one route's admission gate: a buffered-channel semaphore
// plus a typed-atomic queue depth counter.
type shedder struct {
	policy     ShedPolicy
	sem        chan struct{}
	queued     atomic.Int64
	retryAfter string // precomputed whole-seconds header value

	m     *Metrics
	route string
}

// Shed wraps one route's handler in the admission gate described by
// policy, recording rejections into m (asrank_http_requests_shed_total
// by route and reason, plus a live queue-depth gauge). A non-positive
// MaxConcurrent returns next unwrapped.
func Shed(route string, policy ShedPolicy, m *Metrics, next http.Handler) http.Handler {
	if policy.MaxConcurrent <= 0 {
		return next
	}
	policy = policy.withDefaults()
	secs := int(policy.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	s := &shedder{
		policy:     policy,
		sem:        make(chan struct{}, policy.MaxConcurrent),
		retryAfter: strconv.Itoa(secs),
		m:          m,
		route:      route,
	}
	if m != nil {
		// Pre-create the children so the overload series exist at 0
		// from startup — a dashboard can alert on them before the
		// first incident ever increments them.
		m.shedQueue.With(route)
		for _, reason := range []string{"queue_full", "queue_timeout", "canceled"} {
			m.shed.With(route, reason)
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}: // free slot, no queueing
		default:
			if !s.waitForSlot(w, r) {
				return
			}
		}
		defer func() { <-s.sem }()
		next.ServeHTTP(w, r)
	})
}

// waitForSlot queues the request for up to QueueTimeout, rejecting
// immediately when the queue itself is full. It reports whether a slot
// was acquired.
func (s *shedder) waitForSlot(w http.ResponseWriter, r *http.Request) bool {
	if s.queued.Add(1) > int64(s.policy.MaxQueue) {
		s.queued.Add(-1)
		s.reject(w, http.StatusTooManyRequests, "queue_full")
		return false
	}
	if s.m != nil {
		s.m.shedQueue.With(s.route).Inc()
		defer s.m.shedQueue.With(s.route).Dec()
	}
	defer s.queued.Add(-1)
	t := time.NewTimer(s.policy.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-t.C:
		s.reject(w, http.StatusServiceUnavailable, "queue_timeout")
		return false
	case <-r.Context().Done():
		// The client gave up while queued; nothing useful to write,
		// but the rejection is still counted so a retry storm that
		// cancels aggressively stays visible.
		s.count("canceled")
		return false
	}
}

func (s *shedder) count(reason string) {
	if s.m != nil {
		s.m.shed.With(s.route, reason).Inc()
	}
}

// reject writes the shed response: Retry-After plus a small JSON body.
func (s *shedder) reject(w http.ResponseWriter, status int, reason string) {
	s.count(reason)
	h := w.Header()
	h.Set("Retry-After", s.retryAfter)
	h.Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := `{"error":"overloaded","reason":"` + reason + `"}` + "\n"
	if _, err := w.Write([]byte(body)); err != nil {
		writeFailures.Inc()
	}
}
