package apiserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/topology"
)

func testServer(t *testing.T) (*httptest.Server, *core.Result, *topology.Topology) {
	t.Helper()
	p := topology.DefaultParams(81)
	p.ASes = 300
	topo := topology.Generate(p)
	opts := bgpsim.DefaultOptions(81)
	opts.NumVPs = 10
	sim, err := bgpsim.Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
	res := core.Infer(clean, core.Options{})
	srv := httptest.NewServer(NewHandler(Build(res)))
	t.Cleanup(srv.Close)
	return srv, res, topo
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealth(t *testing.T) {
	srv, res, _ := testServer(t)
	var health struct {
		Status string   `json:"status"`
		ASes   int      `json:"ases"`
		Links  int      `json:"links"`
		Clique []uint32 `json:"clique"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/health", &health); code != 200 {
		t.Fatalf("status %d", code)
	}
	if health.Status != "ok" || health.Links != len(res.Rels) || len(health.Clique) != len(res.Clique) {
		t.Errorf("health = %+v", health)
	}
}

func TestListPagination(t *testing.T) {
	srv, _, _ := testServer(t)
	var page struct {
		Total int          `json:"total"`
		Data  []asnSummary `json:"data"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/asns?limit=5", &page); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(page.Data) != 5 {
		t.Fatalf("got %d rows", len(page.Data))
	}
	// Ranked: rank fields are 1..5 and cone sizes non-increasing.
	for i, row := range page.Data {
		if row.Rank != i+1 {
			t.Errorf("row %d has rank %d", i, row.Rank)
		}
		if i > 0 && row.ConeASes > page.Data[i-1].ConeASes {
			t.Errorf("ranking not sorted by cone at row %d", i)
		}
	}
	// Offset paging continues the ranking.
	var page2 struct {
		Data []asnSummary `json:"data"`
	}
	getJSON(t, srv.URL+"/api/v1/asns?limit=5&offset=5", &page2)
	if len(page2.Data) == 0 || page2.Data[0].Rank != 6 {
		t.Errorf("offset page starts at rank %d", page2.Data[0].Rank)
	}
	// Bad params.
	var e map[string]string
	if code := getJSON(t, srv.URL+"/api/v1/asns?limit=0", &e); code != 400 {
		t.Errorf("limit=0 status %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/v1/asns?offset=-1", &e); code != 400 {
		t.Errorf("offset=-1 status %d", code)
	}
}

func TestASNDetailAndLinks(t *testing.T) {
	srv, res, _ := testServer(t)
	top := res.Clique[0]
	var sum asnSummary
	if code := getJSON(t, srv.URL+"/api/v1/asns/"+itoa(top), &sum); code != 200 {
		t.Fatalf("status %d", code)
	}
	if sum.ASN != top || !sum.InClique {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Customers == 0 {
		t.Error("clique member should have customers")
	}

	var links []linkEntry
	if code := getJSON(t, srv.URL+"/api/v1/asns/"+itoa(top)+"/links", &links); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(links) != sum.Providers+sum.Customers+sum.Peers {
		t.Errorf("links = %d, summary says %d", len(links), sum.Providers+sum.Customers+sum.Peers)
	}
	for _, l := range links {
		if l.Step == "none" || l.Relationship == "" {
			t.Errorf("bad link entry %+v", l)
		}
	}

	var coneResp struct {
		Size    int      `json:"size"`
		Members []uint32 `json:"members"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/asns/"+itoa(top)+"/cone", &coneResp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if coneResp.Size != sum.ConeASes || len(coneResp.Members) != coneResp.Size {
		t.Errorf("cone size mismatch: %d vs %d", coneResp.Size, sum.ConeASes)
	}
}

func TestASNErrors(t *testing.T) {
	srv, _, _ := testServer(t)
	var e map[string]string
	if code := getJSON(t, srv.URL+"/api/v1/asns/notanumber", &e); code != 400 {
		t.Errorf("bad ASN status %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/v1/asns/4294967294", &e); code != 404 {
		t.Errorf("unknown ASN status %d", code)
	}
}

func TestCliqueEndpoint(t *testing.T) {
	srv, res, _ := testServer(t)
	var clique []asnSummary
	if code := getJSON(t, srv.URL+"/api/v1/clique", &clique); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(clique) != len(res.Clique) {
		t.Errorf("clique size %d, want %d", len(clique), len(res.Clique))
	}
	for _, m := range clique {
		if !m.InClique {
			t.Errorf("member %d not flagged InClique", m.ASN)
		}
	}
}

func itoa(v uint32) string { return strconv.FormatUint(uint64(v), 10) }
