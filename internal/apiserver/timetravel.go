package apiserver

import (
	"net/http"
	"sync/atomic"

	"github.com/asrank-go/asrank/internal/warehouse"
)

// Time-travel routes (all GET, all behind the same shed/metrics/trace
// stack as the snapshot routes):
//
//	/api/v1/epochs                     every stored epoch: id, label, sizes, hashes
//	/api/v1/asns/{asn}/history         one AS across all epochs: rank, cone, changes
//	/api/v1/diff?from=&to=             net relationship changes between two epochs
//
// They serve from the warehouse's in-memory History index — folded
// from the stored deltas, never by re-running inference — under the
// warehouse chain ETag: a strong validator over every epoch's content
// hash, so appending an epoch (or recovery dropping one) invalidates
// all cached time-travel responses together while leaving the
// per-snapshot ETag of the point-lookup routes untouched.

// timeTravel binds the history routes to a store. Each request reads
// the store's current History pointer, so handlers observe appends
// without any rebuild.
type timeTravel struct {
	store *warehouse.Store
}

// histNotModified answers conditional requests against the chain ETag.
func histNotModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" || !etagMatch(inm, etag) {
		return false
	}
	w.Header().Set("Etag", etag)
	w.WriteHeader(http.StatusNotModified)
	return true
}

func setChainTag(w http.ResponseWriter, etag string) {
	h := w.Header()
	h["Content-Type"] = headerJSON
	h.Set("Etag", etag)
}

// epochsResponse is the JSON shape of /epochs.
type epochsResponse struct {
	ETag   string                `json:"etag"`
	Epochs []warehouse.EpochInfo `json:"epochs"`
}

func (tt *timeTravel) handleEpochs(w http.ResponseWriter, r *http.Request) {
	h := tt.store.History()
	if histNotModified(w, r, h.ETag()) {
		return
	}
	eps := h.Epochs()
	if eps == nil {
		eps = []warehouse.EpochInfo{}
	}
	setChainTag(w, h.ETag())
	writeJSON(w, wantPretty(r), epochsResponse{ETag: h.ETag(), Epochs: eps})
}

// historyResponse is the JSON shape of /asns/{asn}/history.
type historyResponse struct {
	ASN    uint32               `json:"asn"`
	Epochs []warehouse.ASNEpoch `json:"epochs"`
}

func (tt *timeTravel) handleHistory(w http.ResponseWriter, r *http.Request) {
	asn, ok := parseASN(r.PathValue("asn"))
	if !ok {
		writeError(w, http.StatusBadRequest, "bad AS number")
		return
	}
	h := tt.store.History()
	if histNotModified(w, r, h.ETag()) {
		return
	}
	epochs := h.ASN(asn)
	seen := false
	for _, e := range epochs {
		if e.Present {
			seen = true
			break
		}
	}
	if !seen {
		writeError(w, http.StatusNotFound, "AS not observed in any stored epoch")
		return
	}
	setChainTag(w, h.ETag())
	writeJSON(w, wantPretty(r), historyResponse{ASN: asn, Epochs: epochs})
}

// diffResponse is the JSON shape of /diff.
type diffResponse struct {
	From    uint32                `json:"from"`
	To      uint32                `json:"to"`
	Changes []warehouse.RelChange `json:"changes"`
}

func (tt *timeTravel) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, ok1 := parseASN(q.Get("from"))
	to, ok2 := parseASN(q.Get("to"))
	if !ok1 || !ok2 {
		writeError(w, http.StatusBadRequest, "from and to must be epoch ids (integers)")
		return
	}
	h := tt.store.History()
	if histNotModified(w, r, h.ETag()) {
		return
	}
	changes, err := h.Diff(from, to)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if changes == nil {
		changes = []warehouse.RelChange{}
	}
	setChainTag(w, h.ETag())
	writeJSON(w, wantPretty(r), diffResponse{From: from, To: to, Changes: changes})
}

// Live is the hot-swappable serving surface asrankd mounts: an
// http.Handler whose entire route table (snapshot routes + time-travel
// routes) is rebuilt around each new snapshot and swapped in with one
// atomic pointer store. Requests in flight keep the handler they
// started on; new requests see the new epoch — the same immutability
// contract as Data, lifted to the whole mux.
type Live struct {
	cfg   Config
	store *warehouse.Store
	cur   atomic.Pointer[http.Handler]
}

// NewLive returns a Live surface over an optional warehouse (nil
// disables the time-travel routes). Until the first Swap it answers
// 503 on every route.
func NewLive(st *warehouse.Store, cfg Config) *Live {
	lv := &Live{cfg: cfg, store: st}
	var warming http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no snapshot loaded yet")
	})
	lv.cur.Store(&warming)
	return lv
}

// Swap atomically replaces the serving snapshot.
func (lv *Live) Swap(d *Data) {
	h := NewServerWithStore(d, lv.store, lv.cfg)
	lv.cur.Store(&h)
}

func (lv *Live) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*lv.cur.Load()).ServeHTTP(w, r)
}
