package apiserver

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/topology"
	"github.com/asrank-go/asrank/internal/warehouse"
)

// timeTravelServer fills a 3-epoch warehouse and serves its head
// snapshot with the time-travel routes mounted.
func timeTravelServer(t *testing.T) (*httptest.Server, *warehouse.Store) {
	t.Helper()
	p := topology.DefaultParams(42)
	p.ASes = 300
	e := topology.DefaultEvolveParams()
	e.Snapshots = 3
	series := topology.GenerateSeries(p, e)

	st, err := warehouse.Open(t.TempDir(), warehouse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var head *Data
	for i, topo := range series {
		opts := bgpsim.DefaultOptions(42 + 1000*int64(i))
		opts.NumVPs = 6
		sim, err := bgpsim.Run(topo, opts)
		if err != nil {
			t.Fatal(err)
		}
		clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
		snap := warehouse.FromResult(core.Infer(clean, core.Options{}))
		head = BuildSnapshot(snap)
		if _, err := st.Append(snap, "epoch", head.ETag()); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewServerWithStore(head, st, Config{}))
	t.Cleanup(srv.Close)
	return srv, st
}

func TestEpochsEndpoint(t *testing.T) {
	srv, st := timeTravelServer(t)
	var page struct {
		ETag   string                `json:"etag"`
		Epochs []warehouse.EpochInfo `json:"epochs"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/epochs", &page); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(page.Epochs) != 3 {
		t.Fatalf("%d epochs, want 3", len(page.Epochs))
	}
	if page.Epochs[0].Kind != "full" || page.Epochs[1].Kind != "delta" {
		t.Errorf("epoch kinds %s, %s; want full, delta", page.Epochs[0].Kind, page.Epochs[1].Kind)
	}
	if page.ETag != st.History().ETag() {
		t.Errorf("body etag %q, history says %q", page.ETag, st.History().ETag())
	}

	// Conditional revalidation against the chain ETag.
	req, _ := http.NewRequest("GET", srv.URL+"/api/v1/epochs", nil)
	req.Header.Set("If-None-Match", page.ETag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 304 {
		t.Errorf("revalidation status %d, want 304", resp.StatusCode)
	}
}

func TestHistoryEndpoint(t *testing.T) {
	srv, st := timeTravelServer(t)
	snap, _, ok := st.Latest()
	if !ok {
		t.Fatal("store is empty")
	}
	asn := snap.ASNs[snap.RankPos[0]]

	var page struct {
		ASN    uint32               `json:"asn"`
		Epochs []warehouse.ASNEpoch `json:"epochs"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/asns/"+itoa(asn)+"/history", &page); code != 200 {
		t.Fatalf("status %d", code)
	}
	if page.ASN != asn || len(page.Epochs) != 3 {
		t.Fatalf("history = asn %d with %d epochs", page.ASN, len(page.Epochs))
	}
	lastEp := page.Epochs[2]
	if !lastEp.Present || lastEp.Rank != 1 {
		t.Errorf("head epoch of the top AS: %+v", lastEp)
	}

	var msg struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/asns/4294967294/history", &msg); code != 404 {
		t.Errorf("unknown AS status %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/api/v1/asns/zzz/history", &msg); code != 400 {
		t.Errorf("bad AS status %d, want 400", code)
	}
}

func TestDiffEndpoint(t *testing.T) {
	srv, _ := timeTravelServer(t)
	var page struct {
		From    uint32 `json:"from"`
		To      uint32 `json:"to"`
		Changes []struct {
			A   uint32 `json:"a"`
			B   uint32 `json:"b"`
			Old string `json:"old"`
			New string `json:"new"`
		} `json:"changes"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/diff?from=0&to=2", &page); code != 200 {
		t.Fatalf("status %d", code)
	}
	if page.From != 0 || page.To != 2 {
		t.Errorf("echo = %d..%d", page.From, page.To)
	}
	if len(page.Changes) == 0 {
		t.Error("an evolving series produced an empty diff")
	}
	for _, c := range page.Changes[:min(len(page.Changes), 10)] {
		if c.Old == c.New {
			t.Errorf("(%d,%d): no-op change %s->%s", c.A, c.B, c.Old, c.New)
		}
	}

	var msg struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/diff?from=2&to=0", &msg); code != 400 {
		t.Errorf("reversed diff status %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/api/v1/diff?from=0&to=99", &msg); code != 400 {
		t.Errorf("out-of-range diff status %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/api/v1/diff?from=0", &msg); code != 400 {
		t.Errorf("missing param status %d, want 400", code)
	}
}

// TestLiveSwap drives the hot-swap surface asrankd serves through: 503
// while warming, the stored routes after the first swap, and the
// time-travel routes alongside them.
func TestLiveSwap(t *testing.T) {
	_, st := timeTravelServer(t)
	live := NewLive(st, Config{})
	srv := httptest.NewServer(live)
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("warming status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("warming response has no Retry-After")
	}

	snap, _, _ := st.Latest()
	live.Swap(BuildSnapshot(snap))
	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/health", &health); code != 200 || health.Status != "ok" {
		t.Fatalf("after swap: status %d, health %+v", 200, health)
	}
	var page struct {
		Epochs []warehouse.EpochInfo `json:"epochs"`
	}
	if code := getJSON(t, srv.URL+"/api/v1/epochs", &page); code != 200 || len(page.Epochs) != 3 {
		t.Fatalf("after swap: epochs status/len = %d/%d", code, len(page.Epochs))
	}
}
