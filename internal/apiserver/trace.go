package apiserver

import (
	"net/http"

	"github.com/asrank-go/asrank/internal/trace"
)

// TraceRequests wraps one route's handler in a trace middleware: each
// request records an "http.request" span (route/method/status/bytes
// attributes) under tr. An incoming W3C traceparent header joins the
// caller's trace as a remote parent, and the response always carries
// this span's traceparent so a client can correlate its own spans with
// the server's flight recorder. A nil tr keeps the route uninstrumented
// at nil-check cost.
func TraceRequests(tr *trace.Tracer, route string, next http.Handler) http.Handler {
	if tr == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if id, span, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
			ctx = trace.ContextWithRemote(ctx, id, span)
		}
		ctx, span := tr.StartSpan(ctx, "http.request")
		defer span.End()
		span.SetAttr("route", route)
		span.SetAttr("method", r.Method)
		w.Header().Set("traceparent", trace.Traceparent(span))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		span.SetAttrInt("status", int64(sw.Status()))
		span.SetAttrInt("bytes", int64(sw.bytes))
		span.SetAttr("class", statusClass(sw.Status()))
	})
}
