package apiserver

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/asrank-go/asrank/internal/oplog"
)

// Health is the serving-state plane behind /healthz and /readyz. The
// two endpoints answer different questions on purpose: /healthz is
// liveness — "is the process running" — and returns 200 for as long as
// the handler executes at all, so an orchestrator restarts only a hung
// or dead process. /readyz is readiness — "should this replica receive
// traffic" — and moves through three states:
//
//	unready   before MarkReady: the first snapshot has not been swapped
//	          in, so every data route would 404 or serve garbage.
//	ready     MarkReady called and every registered check passes.
//	degraded  MarkReady called but a check fails (SLO burn too high,
//	          shed queue backed up): the replica still serves, but a
//	          balancer should prefer healthier peers.
//
// Both unready and degraded answer 503 (traffic should go elsewhere);
// the JSON body distinguishes them. State transitions are journaled,
// so "when did this replica degrade and why" is an oplog query.
type Health struct {
	journal *oplog.Journal

	readyMark atomic.Bool

	mu sync.Mutex
	//asrank:guardedby mu
	checks []healthCheck
	//asrank:guardedby mu
	lastState string
}

// healthCheck is one registered readiness probe.
type healthCheck struct {
	name  string
	probe func() (ok bool, detail string)
}

// Health states as reported by State and the /readyz body.
const (
	StateUnready  = "unready"
	StateReady    = "ready"
	StateDegraded = "degraded"
)

// NewHealth builds a health plane in the unready state. journal may be
// nil (state transitions then go unrecorded).
func NewHealth(journal *oplog.Journal) *Health {
	return &Health{journal: journal, lastState: StateUnready}
}

// MarkReady records that the replica can serve — called once the first
// snapshot has been swapped in. It is sticky: readiness never reverts
// to unready (a failing check reports degraded instead).
func (h *Health) MarkReady() {
	h.readyMark.Store(true)
}

// AddCheck registers a named readiness probe, evaluated on every
// /readyz request and State call once MarkReady has fired. ok=false
// degrades the replica; detail says why.
func (h *Health) AddCheck(name string, probe func() (ok bool, detail string)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks = append(h.checks, healthCheck{name: name, probe: probe})
}

// checkResult is one probe's outcome in the /readyz body.
type checkResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// State evaluates the current readiness state and returns it with the
// per-check outcomes. A state change since the previous evaluation is
// journaled. Probes run outside h.mu — a slow probe must not serialize
// concurrent /readyz requests or block AddCheck — so the lock only
// covers the checks-slice copy and the lastState transition.
func (h *Health) State() (string, []checkResult) {
	state := StateUnready
	var results []checkResult
	if h.readyMark.Load() {
		h.mu.Lock()
		checks := append([]healthCheck(nil), h.checks...)
		h.mu.Unlock()
		state = StateReady
		for _, c := range checks {
			ok, detail := c.probe()
			results = append(results, checkResult{Name: c.name, OK: ok, Detail: detail})
			if !ok {
				state = StateDegraded
			}
		}
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if state != h.lastState {
		attrs := []oplog.Attr{
			oplog.String("from", h.lastState),
			oplog.String("to", state),
		}
		for _, r := range results {
			if !r.OK {
				attrs = append(attrs, oplog.String("failed_check", r.Name))
			}
		}
		if state == StateDegraded {
			h.journal.Warn(context.Background(), "health.state", attrs...)
		} else {
			h.journal.Info(context.Background(), "health.state", attrs...)
		}
		h.lastState = state
	}
	return state, results
}

// Healthz is the liveness endpoint: 200 whenever the process can run a
// handler at all.
func (h *Health) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
	})
}

// Readyz is the readiness endpoint: 200 with {"status":"ready"} when
// the replica should receive traffic, 503 with the state and failing
// checks otherwise.
func (h *Health) Readyz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		state, results := h.State()
		w.Header().Set("Content-Type", "application/json")
		if state != StateReady {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(struct {
			Status string        `json:"status"`
			Checks []checkResult `json:"checks,omitempty"`
		}{Status: state, Checks: results})
	})
}
