package mrt

import (
	"bytes"
	"io"
	"testing"
	"time"

	"github.com/asrank-go/asrank/internal/chaos"
)

// FuzzReader feeds arbitrary bytes to the MRT reader: it must never
// panic, and any record it does decode must re-encode without error.
func FuzzReader(f *testing.F) {
	// Seed corpus: one valid record of each supported kind.
	ts := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	var seed bytes.Buffer
	w := NewWriter(&seed)
	peers := []Peer{{BGPID: addr("10.0.0.1"), Addr: addr("203.0.113.1"), ASN: 7018}}
	_ = w.WriteRecord(&Record{Timestamp: ts, Type: TypeTableDumpV2, Subtype: SubtypePeerIndexTable,
		Body: &PeerIndexTable{CollectorID: addr("198.51.100.1"), ViewName: "v", Peers: peers}})
	_ = w.WriteRecord(&Record{Timestamp: ts, Type: TypeTableDumpV2, Subtype: SubtypeRIBIPv4Unicast,
		Body: &RIB{Prefix: prefix("192.0.2.0/24"), Entries: []RIBEntry{{PeerIndex: 0, Originated: ts, Attrs: testAttrs(7018, 64500)}}}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Shared chaos corpus: the same deterministic breakage shapes the
	// bgp fuzz targets seed from (same generator, same seed), applied
	// to a real record stream.
	for _, v := range chaos.CorruptVariants(20130401, seed.Bytes(), 8) {
		f.Add(v)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			rec, err := r.Next()
			if err != nil {
				if err != io.EOF && rec != nil {
					t.Fatal("record returned alongside error")
				}
				return
			}
			// Anything decoded must be re-encodable.
			var buf bytes.Buffer
			if err := NewWriter(&buf).WriteRecord(rec); err != nil {
				t.Fatalf("decoded record failed to encode: %v", err)
			}
		}
	})
}
