package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"github.com/asrank-go/asrank/internal/bgp"
)

// BGP4MPMessage is a BGP4MP MESSAGE or MESSAGE_AS4 record: one BGP
// message captured on a collector session.
type BGP4MPMessage struct {
	PeerAS    uint32
	LocalAS   uint32
	Interface uint16
	PeerAddr  netip.Addr
	LocalAddr netip.Addr
	AS4       bool   // record subtype was MESSAGE_AS4
	Data      []byte // complete BGP message including header
}

// Update parses the carried BGP message as an UPDATE.
func (m *BGP4MPMessage) Update() (*bgp.Update, error) {
	return bgp.ParseUpdate(m.Data, m.AS4)
}

func appendBGP4MPPeering(dst []byte, peerAS, localAS uint32, ifindex uint16, peer, local netip.Addr, as4 bool) ([]byte, error) {
	if as4 {
		dst = binary.BigEndian.AppendUint32(dst, peerAS)
		dst = binary.BigEndian.AppendUint32(dst, localAS)
	} else {
		if peerAS > 0xffff || localAS > 0xffff {
			return nil, fmt.Errorf("mrt: ASN does not fit 2-byte BGP4MP subtype")
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(peerAS))
		dst = binary.BigEndian.AppendUint16(dst, uint16(localAS))
	}
	dst = binary.BigEndian.AppendUint16(dst, ifindex)
	if peer.Is4() != local.Is4() {
		return nil, fmt.Errorf("mrt: peer/local address family mismatch")
	}
	afi := uint16(bgp.AFIIPv4)
	if peer.Is6() {
		afi = bgp.AFIIPv6
	}
	dst = binary.BigEndian.AppendUint16(dst, afi)
	dst = append(dst, peer.AsSlice()...)
	dst = append(dst, local.AsSlice()...)
	return dst, nil
}

func parseBGP4MPPeering(b []byte, as4 bool) (peerAS, localAS uint32, ifindex uint16, peer, local netip.Addr, rest []byte, err error) {
	asLen := 2
	if as4 {
		asLen = 4
	}
	if len(b) < asLen*2+4 {
		err = errShort
		return
	}
	if as4 {
		peerAS = binary.BigEndian.Uint32(b)
		localAS = binary.BigEndian.Uint32(b[4:])
	} else {
		peerAS = uint32(binary.BigEndian.Uint16(b))
		localAS = uint32(binary.BigEndian.Uint16(b[2:]))
	}
	b = b[asLen*2:]
	ifindex = binary.BigEndian.Uint16(b)
	afi := binary.BigEndian.Uint16(b[2:])
	b = b[4:]
	addrLen := 4
	if afi == bgp.AFIIPv6 {
		addrLen = 16
	} else if afi != bgp.AFIIPv4 {
		err = fmt.Errorf("mrt: BGP4MP AFI %d unsupported", afi)
		return
	}
	if len(b) < addrLen*2 {
		err = errShort
		return
	}
	peer, _ = netip.AddrFromSlice(b[:addrLen])
	local, _ = netip.AddrFromSlice(b[addrLen : addrLen*2])
	rest = b[addrLen*2:]
	return
}

func (m *BGP4MPMessage) appendTo(dst []byte) ([]byte, error) {
	dst, err := appendBGP4MPPeering(dst, m.PeerAS, m.LocalAS, m.Interface, m.PeerAddr, m.LocalAddr, m.AS4)
	if err != nil {
		return nil, err
	}
	return append(dst, m.Data...), nil
}

func parseBGP4MPMessage(b []byte, as4 bool) (*BGP4MPMessage, error) {
	peerAS, localAS, ifindex, peer, local, rest, err := parseBGP4MPPeering(b, as4)
	if err != nil {
		return nil, err
	}
	return &BGP4MPMessage{
		PeerAS:    peerAS,
		LocalAS:   localAS,
		Interface: ifindex,
		PeerAddr:  peer,
		LocalAddr: local,
		AS4:       as4,
		Data:      append([]byte(nil), rest...),
	}, nil
}

// BGP FSM states carried in STATE_CHANGE records (RFC 6396 §4.4.1).
const (
	StateIdle        = 1
	StateConnect     = 2
	StateActive      = 3
	StateOpenSent    = 4
	StateOpenConfirm = 5
	StateEstablished = 6
)

// BGP4MPStateChange is a BGP4MP STATE_CHANGE or STATE_CHANGE_AS4 record.
type BGP4MPStateChange struct {
	PeerAS    uint32
	LocalAS   uint32
	Interface uint16
	PeerAddr  netip.Addr
	LocalAddr netip.Addr
	AS4       bool
	OldState  uint16
	NewState  uint16
}

func (m *BGP4MPStateChange) appendTo(dst []byte) ([]byte, error) {
	dst, err := appendBGP4MPPeering(dst, m.PeerAS, m.LocalAS, m.Interface, m.PeerAddr, m.LocalAddr, m.AS4)
	if err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint16(dst, m.OldState)
	dst = binary.BigEndian.AppendUint16(dst, m.NewState)
	return dst, nil
}

func parseBGP4MPStateChange(b []byte, as4 bool) (*BGP4MPStateChange, error) {
	peerAS, localAS, ifindex, peer, local, rest, err := parseBGP4MPPeering(b, as4)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, errShort
	}
	return &BGP4MPStateChange{
		PeerAS:    peerAS,
		LocalAS:   localAS,
		Interface: ifindex,
		PeerAddr:  peer,
		LocalAddr: local,
		AS4:       as4,
		OldState:  binary.BigEndian.Uint16(rest),
		NewState:  binary.BigEndian.Uint16(rest[2:]),
	}, nil
}
