// Package mrt reads and writes MRT routing-archive files (RFC 6396), the
// format Route Views and RIPE RIS publish BGP RIB snapshots and update
// traces in. Supported record types: TABLE_DUMP (v1, IPv4),
// TABLE_DUMP_V2 (PEER_INDEX_TABLE, RIB_IPV4_UNICAST, RIB_IPV6_UNICAST),
// and BGP4MP/BGP4MP_ET (MESSAGE, MESSAGE_AS4, STATE_CHANGE,
// STATE_CHANGE_AS4). Unknown record types round-trip as raw bytes.
//
// The Reader is streaming: it reads one record at a time and reuses its
// internal buffer, in the spirit of gopacket's DecodingLayerParser. The
// high-level RIBWriter/RIBReader pair (rib.go) handles the
// PEER_INDEX_TABLE bookkeeping that TABLE_DUMP_V2 requires.
package mrt

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// MRT record types (RFC 6396 §4, RFC 8050).
const (
	TypeOSPFv2      = 11
	TypeTableDump   = 12
	TypeTableDumpV2 = 13
	TypeBGP4MP      = 16
	TypeBGP4MPET    = 17
)

// TABLE_DUMP_V2 subtypes (RFC 6396 §4.3).
const (
	SubtypePeerIndexTable   = 1
	SubtypeRIBIPv4Unicast   = 2
	SubtypeRIBIPv4Multicast = 3
	SubtypeRIBIPv6Unicast   = 4
	SubtypeRIBIPv6Multicast = 5
	SubtypeRIBGeneric       = 6
)

// BGP4MP subtypes (RFC 6396 §4.4).
const (
	SubtypeStateChange    = 0
	SubtypeMessage        = 1
	SubtypeMessageAS4     = 4
	SubtypeStateChangeAS4 = 5
)

// TABLE_DUMP (v1) subtypes are the AFI of the carried prefix.
const (
	SubtypeAFIIPv4 = 1
	SubtypeAFIIPv6 = 2
)

// headerLen is the fixed MRT common header size.
const headerLen = 12

// maxRecordLen bounds a single MRT record; real RIB records are far
// smaller, and the cap keeps a corrupt length field from exhausting
// memory.
const maxRecordLen = 1 << 24

// Record is one MRT record. Body holds a decoded representation for
// known (type, subtype) pairs — *PeerIndexTable, *RIB, *TableDump,
// *BGP4MPMessage, *BGP4MPStateChange — and RawBody otherwise.
type Record struct {
	Timestamp time.Time
	Type      uint16
	Subtype   uint16
	Body      Body
}

// Body is implemented by every decoded MRT record body.
type Body interface {
	// appendTo appends the wire form of the body.
	appendTo(dst []byte) ([]byte, error)
}

// RawBody preserves records this package does not interpret.
type RawBody []byte

func (b RawBody) appendTo(dst []byte) ([]byte, error) { return append(dst, b...), nil }

var errShort = errors.New("mrt: truncated record")

// Reader reads MRT records from a stream. Gzip-compressed streams
// (as Route Views and RIPE RIS publish) are decompressed transparently.
type Reader struct {
	r   *bufio.Reader
	buf []byte
	err error // deferred construction error (bad gzip header)
}

// NewReader returns a streaming MRT reader, sniffing and unwrapping
// gzip automatically.
func NewReader(r io.Reader) *Reader {
	br := bufio.NewReaderSize(r, 1<<16)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return &Reader{err: fmt.Errorf("mrt: bad gzip stream: %w", err)}
		}
		br = bufio.NewReaderSize(zr, 1<<16)
	}
	return &Reader{r: br}
}

// Next returns the next record, or io.EOF at end of stream. The returned
// record's Body does not alias the reader's internal buffer. Records with
// unknown types are returned with a RawBody and a nil error.
func (r *Reader) Next() (*Record, error) {
	if r.err != nil {
		return nil, r.err
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, errShort
		}
		return nil, err
	}
	ts := binary.BigEndian.Uint32(hdr[0:])
	typ := binary.BigEndian.Uint16(hdr[4:])
	sub := binary.BigEndian.Uint16(hdr[6:])
	length := binary.BigEndian.Uint32(hdr[8:])
	if length > maxRecordLen {
		return nil, fmt.Errorf("mrt: record length %d exceeds limit", length)
	}
	if cap(r.buf) < int(length) {
		r.buf = make([]byte, length)
	}
	body := r.buf[:length]
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, errShort
	}

	rec := &Record{
		Timestamp: time.Unix(int64(ts), 0).UTC(),
		Type:      typ,
		Subtype:   sub,
	}
	// The extended-timestamp variants carry microseconds first.
	if typ == TypeBGP4MPET {
		if len(body) < 4 {
			return nil, errShort
		}
		us := binary.BigEndian.Uint32(body)
		rec.Timestamp = rec.Timestamp.Add(time.Duration(us) * time.Microsecond)
		body = body[4:]
	}

	decoded, err := decodeBody(typ, sub, body)
	if err != nil {
		return nil, fmt.Errorf("mrt: record type %d subtype %d: %w", typ, sub, err)
	}
	rec.Body = decoded
	return rec, nil
}

func decodeBody(typ, sub uint16, body []byte) (Body, error) {
	switch typ {
	case TypeTableDumpV2:
		switch sub {
		case SubtypePeerIndexTable:
			return parsePeerIndexTable(body)
		case SubtypeRIBIPv4Unicast:
			return parseRIB(body, false)
		case SubtypeRIBIPv6Unicast:
			return parseRIB(body, true)
		}
	case TypeTableDump:
		if sub == SubtypeAFIIPv4 {
			return parseTableDump(body)
		}
	case TypeBGP4MP, TypeBGP4MPET:
		switch sub {
		case SubtypeMessage:
			return parseBGP4MPMessage(body, false)
		case SubtypeMessageAS4:
			return parseBGP4MPMessage(body, true)
		case SubtypeStateChange:
			return parseBGP4MPStateChange(body, false)
		case SubtypeStateChangeAS4:
			return parseBGP4MPStateChange(body, true)
		}
	}
	return RawBody(append([]byte(nil), body...)), nil
}

// Writer writes MRT records to a stream.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns an MRT writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteRecord writes one record.
func (w *Writer) WriteRecord(rec *Record) error {
	body, err := rec.Body.appendTo(nil)
	if err != nil {
		return err
	}
	if rec.Type == TypeBGP4MPET {
		us := uint32(rec.Timestamp.Nanosecond() / 1000)
		body = append(binary.BigEndian.AppendUint32(nil, us), body...)
	}
	if len(body) > maxRecordLen {
		return fmt.Errorf("mrt: record length %d exceeds limit", len(body))
	}
	w.buf = w.buf[:0]
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(rec.Timestamp.Unix()))
	w.buf = binary.BigEndian.AppendUint16(w.buf, rec.Type)
	w.buf = binary.BigEndian.AppendUint16(w.buf, rec.Subtype)
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(len(body)))
	w.buf = append(w.buf, body...)
	_, err = w.w.Write(w.buf)
	return err
}
