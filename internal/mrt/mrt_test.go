package mrt

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"github.com/asrank-go/asrank/internal/bgp"
)

var testTime = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)

func addr(s string) netip.Addr     { return netip.MustParseAddr(s) }
func prefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func testAttrs(asns ...uint32) *bgp.PathAttributes {
	return &bgp.PathAttributes{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.Sequence(asns...),
		NextHop: addr("192.0.2.1"),
	}
}

func roundTrip(t *testing.T, rec *Record) *Record {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(rec); err != nil {
		t.Fatalf("write: %v", err)
	}
	r := NewReader(&buf)
	got, err := r.Next()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return got
}

func TestPeerIndexTableRoundTrip(t *testing.T) {
	rec := &Record{
		Timestamp: testTime,
		Type:      TypeTableDumpV2,
		Subtype:   SubtypePeerIndexTable,
		Body: &PeerIndexTable{
			CollectorID: addr("198.51.100.1"),
			ViewName:    "rv2",
			Peers: []Peer{
				{BGPID: addr("10.0.0.1"), Addr: addr("203.0.113.1"), ASN: 7018},
				{BGPID: addr("10.0.0.2"), Addr: addr("2001:db8::2"), ASN: 4200000005},
			},
		},
	}
	got := roundTrip(t, rec)
	if !got.Timestamp.Equal(testTime) {
		t.Errorf("timestamp = %v", got.Timestamp)
	}
	if !reflect.DeepEqual(got.Body, rec.Body) {
		t.Errorf("body mismatch:\ngot  %+v\nwant %+v", got.Body, rec.Body)
	}
}

func TestRIBRoundTrip(t *testing.T) {
	rec := &Record{
		Timestamp: testTime,
		Type:      TypeTableDumpV2,
		Subtype:   SubtypeRIBIPv4Unicast,
		Body: &RIB{
			Sequence: 7,
			Prefix:   prefix("192.0.2.0/24"),
			Entries: []RIBEntry{
				{PeerIndex: 0, Originated: testTime.Add(-time.Hour), Attrs: testAttrs(7018, 3356, 64500)},
				{PeerIndex: 1, Originated: testTime.Add(-2 * time.Hour), Attrs: testAttrs(1299, 64500)},
			},
		},
	}
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(got.Body, rec.Body) {
		t.Errorf("body mismatch:\ngot  %+v\nwant %+v", got.Body, rec.Body)
	}
}

func TestRIBv6RoundTrip(t *testing.T) {
	attrs := &bgp.PathAttributes{
		Origin: bgp.OriginIGP,
		ASPath: bgp.Sequence(6939, 64500),
		MPReach: &bgp.MPReach{
			AFI:     bgp.AFIIPv6,
			SAFI:    bgp.SAFIUnicast,
			NextHop: addr("2001:db8::1"),
			NLRI:    []netip.Prefix{prefix("2001:db8:100::/48")},
		},
	}
	rec := &Record{
		Timestamp: testTime,
		Type:      TypeTableDumpV2,
		Subtype:   SubtypeRIBIPv6Unicast,
		Body: &RIB{
			Sequence: 1,
			Prefix:   prefix("2001:db8:100::/48"),
			Entries:  []RIBEntry{{PeerIndex: 0, Originated: testTime, Attrs: attrs}},
		},
	}
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(got.Body, rec.Body) {
		t.Errorf("v6 RIB mismatch:\ngot  %+v\nwant %+v", got.Body, rec.Body)
	}
}

func TestTableDumpRoundTrip(t *testing.T) {
	rec := &Record{
		Timestamp: testTime,
		Type:      TypeTableDump,
		Subtype:   SubtypeAFIIPv4,
		Body: &TableDump{
			ViewNumber: 0,
			Sequence:   42,
			Prefix:     prefix("10.1.0.0/16"),
			Status:     1,
			Originated: testTime.Add(-time.Hour),
			PeerAddr:   addr("203.0.113.9"),
			PeerAS:     701,
			Attrs:      testAttrs(701, 174, 64500),
		},
	}
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(got.Body, rec.Body) {
		t.Errorf("body mismatch:\ngot  %+v\nwant %+v", got.Body, rec.Body)
	}
}

func TestTableDumpRejects4ByteAS(t *testing.T) {
	td := &TableDump{
		Prefix:   prefix("10.0.0.0/8"),
		PeerAddr: addr("203.0.113.9"),
		PeerAS:   4200000001,
		Attrs:    testAttrs(701),
	}
	if _, err := td.appendTo(nil); err == nil {
		t.Error("4-byte peer AS should fail in TABLE_DUMP")
	}
}

func TestBGP4MPMessageRoundTrip(t *testing.T) {
	upd := &bgp.Update{
		Attrs: *testAttrs(7018, 64500),
		NLRI:  []netip.Prefix{prefix("192.0.2.0/24")},
	}
	msg, err := bgp.EncodeUpdate(upd, true)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{
		Timestamp: testTime,
		Type:      TypeBGP4MP,
		Subtype:   SubtypeMessageAS4,
		Body: &BGP4MPMessage{
			PeerAS:    4200000001,
			LocalAS:   6447,
			Interface: 0,
			PeerAddr:  addr("203.0.113.1"),
			LocalAddr: addr("203.0.113.2"),
			AS4:       true,
			Data:      msg,
		},
	}
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(got.Body, rec.Body) {
		t.Errorf("body mismatch:\ngot  %+v\nwant %+v", got.Body, rec.Body)
	}
	gotUpd, err := got.Body.(*BGP4MPMessage).Update()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotUpd, upd) {
		t.Errorf("update mismatch: %+v", gotUpd)
	}
}

func TestBGP4MPMessage2ByteRejects4ByteAS(t *testing.T) {
	m := &BGP4MPMessage{
		PeerAS:    4200000001,
		LocalAS:   6447,
		PeerAddr:  addr("203.0.113.1"),
		LocalAddr: addr("203.0.113.2"),
		AS4:       false,
	}
	if _, err := m.appendTo(nil); err == nil {
		t.Error("4-byte AS in 2-byte subtype should fail")
	}
}

func TestBGP4MPStateChangeRoundTrip(t *testing.T) {
	rec := &Record{
		Timestamp: testTime,
		Type:      TypeBGP4MP,
		Subtype:   SubtypeStateChangeAS4,
		Body: &BGP4MPStateChange{
			PeerAS:    7018,
			LocalAS:   6447,
			PeerAddr:  addr("2001:db8::1"),
			LocalAddr: addr("2001:db8::2"),
			AS4:       true,
			OldState:  StateOpenConfirm,
			NewState:  StateEstablished,
		},
	}
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(got.Body, rec.Body) {
		t.Errorf("body mismatch:\ngot  %+v\nwant %+v", got.Body, rec.Body)
	}
}

func TestBGP4MPETMicroseconds(t *testing.T) {
	ts := testTime.Add(123456 * time.Microsecond)
	rec := &Record{
		Timestamp: ts,
		Type:      TypeBGP4MPET,
		Subtype:   SubtypeStateChange,
		Body: &BGP4MPStateChange{
			PeerAS:    701,
			LocalAS:   6447,
			PeerAddr:  addr("203.0.113.1"),
			LocalAddr: addr("203.0.113.2"),
			OldState:  StateIdle,
			NewState:  StateConnect,
		},
	}
	got := roundTrip(t, rec)
	if !got.Timestamp.Equal(ts) {
		t.Errorf("ET timestamp = %v, want %v", got.Timestamp, ts)
	}
	if !reflect.DeepEqual(got.Body, rec.Body) {
		t.Errorf("body mismatch")
	}
}

func TestUnknownTypeRoundTrip(t *testing.T) {
	rec := &Record{
		Timestamp: testTime,
		Type:      TypeOSPFv2,
		Subtype:   0,
		Body:      RawBody{1, 2, 3, 4},
	}
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(got.Body, rec.Body) {
		t.Errorf("raw body mismatch: %+v", got.Body)
	}
}

func TestReaderEOFAndTruncation(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty stream: err = %v, want EOF", err)
	}
	// Truncated header.
	r = NewReader(bytes.NewReader([]byte{0, 1, 2}))
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated header: err = %v", err)
	}
	// Header promising more body than present.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(&Record{Timestamp: testTime, Type: TypeOSPFv2, Body: RawBody{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	r = NewReader(bytes.NewReader(b[:len(b)-1]))
	if _, err := r.Next(); err == nil {
		t.Error("truncated body should fail")
	}
}

func TestReaderMultipleRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		err := w.WriteRecord(&Record{
			Timestamp: testTime.Add(time.Duration(i) * time.Minute),
			Type:      TypeOSPFv2,
			Subtype:   uint16(i),
			Body:      RawBody{byte(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i := 0; i < 5; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Subtype != uint16(i) || !reflect.DeepEqual(rec.Body, RawBody{byte(i)}) {
			t.Errorf("record %d = %+v", i, rec)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestRIBWriterReader(t *testing.T) {
	peers := []Peer{
		{BGPID: addr("10.0.0.1"), Addr: addr("203.0.113.1"), ASN: 7018},
		{BGPID: addr("10.0.0.2"), Addr: addr("203.0.113.2"), ASN: 3356},
	}
	var buf bytes.Buffer
	rw := NewRIBWriter(&buf, addr("198.51.100.1"), "test view", peers, testTime)
	if err := rw.WritePrefix(prefix("192.0.2.0/24"), []RIBEntry{
		{PeerIndex: 0, Originated: testTime, Attrs: testAttrs(7018, 64500)},
		{PeerIndex: 1, Originated: testTime, Attrs: testAttrs(3356, 64500)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := rw.WritePrefix(prefix("198.51.100.0/24"), []RIBEntry{
		{PeerIndex: 1, Originated: testTime, Attrs: testAttrs(3356, 174, 64501)},
	}); err != nil {
		t.Fatal(err)
	}

	rr := NewRIBReader(&buf)
	var got []struct {
		prefix netip.Prefix
		asn    uint32
		origin uint32
	}
	for {
		e, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		path := e.RIBEntry.Attrs.Path().Flatten()
		got = append(got, struct {
			prefix netip.Prefix
			asn    uint32
			origin uint32
		}{e.Prefix, e.Peer.ASN, path[len(path)-1]})
	}
	if len(got) != 3 {
		t.Fatalf("flattened %d entries, want 3", len(got))
	}
	if got[0].asn != 7018 || got[1].asn != 3356 || got[2].asn != 3356 {
		t.Errorf("peer ASNs wrong: %+v", got)
	}
	if got[2].origin != 64501 {
		t.Errorf("origin = %d", got[2].origin)
	}
	if rr.PeerIndex() == nil || rr.PeerIndex().ViewName != "test view" {
		t.Error("peer index not exposed")
	}
}

func TestRIBWriterValidatesPeerIndex(t *testing.T) {
	var buf bytes.Buffer
	rw := NewRIBWriter(&buf, addr("198.51.100.1"), "v", []Peer{{BGPID: addr("10.0.0.1"), Addr: addr("203.0.113.1"), ASN: 1}}, testTime)
	err := rw.WritePrefix(prefix("192.0.2.0/24"), []RIBEntry{{PeerIndex: 5, Attrs: testAttrs(1)}})
	if err == nil {
		t.Error("out-of-range peer index should fail")
	}
}

func TestRIBWriterFlushWritesIndex(t *testing.T) {
	var buf bytes.Buffer
	rw := NewRIBWriter(&buf, addr("198.51.100.1"), "v", nil, testTime)
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.Body.(*PeerIndexTable); !ok {
		t.Errorf("flushed record is %T", rec.Body)
	}
}

func TestRIBReaderEntryBeforeIndexFails(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	err := w.WriteRecord(&Record{
		Timestamp: testTime,
		Type:      TypeTableDumpV2,
		Subtype:   SubtypeRIBIPv4Unicast,
		Body: &RIB{
			Prefix:  prefix("192.0.2.0/24"),
			Entries: []RIBEntry{{PeerIndex: 0, Attrs: testAttrs(1)}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRIBReader(&buf).Next(); err == nil {
		t.Error("entry before index table should fail")
	}
}

func TestRIBReaderSkipsUnrelatedRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRecord(&Record{Timestamp: testTime, Type: TypeOSPFv2, Body: RawBody{9}}); err != nil {
		t.Fatal(err)
	}
	rw := NewRIBWriter(&buf, addr("198.51.100.1"), "v",
		[]Peer{{BGPID: addr("10.0.0.1"), Addr: addr("203.0.113.1"), ASN: 1}}, testTime)
	if err := rw.WritePrefix(prefix("192.0.2.0/24"),
		[]RIBEntry{{PeerIndex: 0, Originated: testTime, Attrs: testAttrs(1, 2)}}); err != nil {
		t.Fatal(err)
	}
	e, err := NewRIBReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if e.Peer.ASN != 1 {
		t.Errorf("entry peer = %+v", e.Peer)
	}
}

func TestParseErrorsTruncatedBodies(t *testing.T) {
	cases := []struct {
		sub  uint16
		body []byte
	}{
		{SubtypePeerIndexTable, []byte{1, 2, 3}},
		{SubtypePeerIndexTable, []byte{1, 2, 3, 4, 0, 9}}, // name longer than data
		{SubtypeRIBIPv4Unicast, []byte{0, 0}},
		{SubtypeRIBIPv4Unicast, []byte{0, 0, 0, 1, 24, 10, 0}}, // truncated prefix+count
	}
	for i, c := range cases {
		if _, err := decodeBody(TypeTableDumpV2, c.sub, c.body); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := decodeBody(TypeBGP4MP, SubtypeMessageAS4, []byte{1, 2}); err == nil {
		t.Error("truncated BGP4MP should fail")
	}
	if _, err := decodeBody(TypeBGP4MP, SubtypeStateChangeAS4, make([]byte, 20)); err == nil {
		t.Error("truncated state change should fail")
	}
	if _, err := decodeBody(TypeTableDump, SubtypeAFIIPv4, make([]byte, 10)); err == nil {
		t.Error("truncated TABLE_DUMP should fail")
	}
}

func TestWriterRejectsOversizedRecord(t *testing.T) {
	w := NewWriter(io.Discard)
	err := w.WriteRecord(&Record{Timestamp: testTime, Type: TypeOSPFv2, Body: RawBody(make([]byte, maxRecordLen+1))})
	if err == nil {
		t.Error("oversized record should fail")
	}
}

func TestReaderRejectsOversizedLength(t *testing.T) {
	hdr := make([]byte, headerLen)
	hdr[8] = 0xff // length = 0xff000000
	hdr[9] = 0xff
	hdr[10] = 0xff
	hdr[11] = 0xff
	r := NewReader(bytes.NewReader(hdr))
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("oversized length: err = %v", err)
	}
}

func TestReaderTransparentGzip(t *testing.T) {
	var plain bytes.Buffer
	w := NewWriter(&plain)
	if err := w.WriteRecord(&Record{Timestamp: testTime, Type: TypeOSPFv2, Subtype: 3, Body: RawBody{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := NewReader(&gz).Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Subtype != 3 || !reflect.DeepEqual(rec.Body, RawBody{1, 2, 3}) {
		t.Errorf("gzip record = %+v", rec)
	}
	// Corrupt gzip header surfaces on Next.
	bad := append([]byte{0x1f, 0x8b, 0xff}, make([]byte, 16)...)
	if _, err := NewReader(bytes.NewReader(bad)).Next(); err == nil {
		t.Error("bad gzip stream should fail")
	}
}
