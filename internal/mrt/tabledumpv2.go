package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"github.com/asrank-go/asrank/internal/bgp"
)

// Peer is one entry of a TABLE_DUMP_V2 PEER_INDEX_TABLE: a BGP session
// of the collector.
type Peer struct {
	BGPID netip.Addr // router ID of the peer
	Addr  netip.Addr // transport address of the peer
	ASN   uint32
}

// PeerIndexTable is the first record of a TABLE_DUMP_V2 RIB dump; RIB
// entries refer to peers by index into it.
type PeerIndexTable struct {
	CollectorID netip.Addr
	ViewName    string
	Peers       []Peer
}

// peer type flag bits (RFC 6396 §4.3.1).
const (
	peerFlagV6  = 0x1 // peer address is IPv6
	peerFlagAS4 = 0x2 // peer AS is 4 bytes
)

func (t *PeerIndexTable) appendTo(dst []byte) ([]byte, error) {
	if !t.CollectorID.Is4() {
		return nil, fmt.Errorf("mrt: collector ID must be IPv4, got %v", t.CollectorID)
	}
	id := t.CollectorID.As4()
	dst = append(dst, id[:]...)
	if len(t.ViewName) > 0xffff {
		return nil, fmt.Errorf("mrt: view name too long (%d bytes)", len(t.ViewName))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(t.ViewName)))
	dst = append(dst, t.ViewName...)
	if len(t.Peers) > 0xffff {
		return nil, fmt.Errorf("mrt: too many peers (%d)", len(t.Peers))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(t.Peers)))
	for _, p := range t.Peers {
		var flags byte = peerFlagAS4 // always write 4-byte ASNs
		if p.Addr.Is6() {
			flags |= peerFlagV6
		}
		dst = append(dst, flags)
		if !p.BGPID.Is4() {
			return nil, fmt.Errorf("mrt: peer BGP ID must be IPv4, got %v", p.BGPID)
		}
		bid := p.BGPID.As4()
		dst = append(dst, bid[:]...)
		dst = append(dst, p.Addr.AsSlice()...)
		dst = binary.BigEndian.AppendUint32(dst, p.ASN)
	}
	return dst, nil
}

func parsePeerIndexTable(b []byte) (*PeerIndexTable, error) {
	if len(b) < 6 {
		return nil, errShort
	}
	t := &PeerIndexTable{CollectorID: netip.AddrFrom4([4]byte(b[0:4]))}
	nameLen := int(binary.BigEndian.Uint16(b[4:]))
	b = b[6:]
	if len(b) < nameLen+2 {
		return nil, errShort
	}
	t.ViewName = string(b[:nameLen])
	b = b[nameLen:]
	count := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	t.Peers = make([]Peer, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 5 {
			return nil, errShort
		}
		flags := b[0]
		p := Peer{BGPID: netip.AddrFrom4([4]byte(b[1:5]))}
		b = b[5:]
		addrLen := 4
		if flags&peerFlagV6 != 0 {
			addrLen = 16
		}
		asLen := 2
		if flags&peerFlagAS4 != 0 {
			asLen = 4
		}
		if len(b) < addrLen+asLen {
			return nil, errShort
		}
		addr, _ := netip.AddrFromSlice(b[:addrLen])
		p.Addr = addr
		b = b[addrLen:]
		if asLen == 4 {
			p.ASN = binary.BigEndian.Uint32(b)
		} else {
			p.ASN = uint32(binary.BigEndian.Uint16(b))
		}
		b = b[asLen:]
		t.Peers = append(t.Peers, p)
	}
	return t, nil
}

// RIBEntry is one peer's route for a RIB record's prefix.
type RIBEntry struct {
	PeerIndex  uint16
	Originated time.Time
	Attrs      *bgp.PathAttributes
}

// RIB is a TABLE_DUMP_V2 RIB_IPV4_UNICAST or RIB_IPV6_UNICAST record:
// every peer's best route for one prefix.
type RIB struct {
	Sequence uint32
	Prefix   netip.Prefix
	Entries  []RIBEntry
}

func (r *RIB) appendTo(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, r.Sequence)
	dst = bgp.AppendNLRI(dst, r.Prefix)
	if len(r.Entries) > 0xffff {
		return nil, fmt.Errorf("mrt: too many RIB entries (%d)", len(r.Entries))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Entries)))
	for _, e := range r.Entries {
		dst = binary.BigEndian.AppendUint16(dst, e.PeerIndex)
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.Originated.Unix()))
		// RFC 6396 §4.3.4: attributes in RIB entries always use 4-byte
		// AS_PATH encoding.
		attrs, err := e.Attrs.Encode(true)
		if err != nil {
			return nil, err
		}
		if len(attrs) > 0xffff {
			return nil, fmt.Errorf("mrt: RIB entry attributes too long (%d)", len(attrs))
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
		dst = append(dst, attrs...)
	}
	return dst, nil
}

func parseRIB(b []byte, v6 bool) (*RIB, error) {
	if len(b) < 4 {
		return nil, errShort
	}
	r := &RIB{Sequence: binary.BigEndian.Uint32(b)}
	b = b[4:]
	prefix, n, err := bgp.ParseNLRI(b, v6)
	if err != nil {
		return nil, err
	}
	r.Prefix = prefix
	b = b[n:]
	if len(b) < 2 {
		return nil, errShort
	}
	count := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	r.Entries = make([]RIBEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return nil, errShort
		}
		e := RIBEntry{
			PeerIndex:  binary.BigEndian.Uint16(b),
			Originated: time.Unix(int64(binary.BigEndian.Uint32(b[2:])), 0).UTC(),
		}
		alen := int(binary.BigEndian.Uint16(b[6:]))
		b = b[8:]
		if len(b) < alen {
			return nil, errShort
		}
		e.Attrs, err = bgp.ParseAttributes(b[:alen], true)
		if err != nil {
			return nil, err
		}
		b = b[alen:]
		r.Entries = append(r.Entries, e)
	}
	return r, nil
}
