package mrt

import (
	"fmt"
	"io"
	"net/netip"
	"time"
)

// RIBWriter writes a TABLE_DUMP_V2 RIB snapshot: one PEER_INDEX_TABLE
// followed by one RIB record per prefix, with sequence numbers assigned
// automatically.
type RIBWriter struct {
	w         *Writer
	timestamp time.Time
	index     *PeerIndexTable
	wroteIdx  bool
	seq       uint32
}

// NewRIBWriter prepares a RIB snapshot writer. The peer index table is
// written lazily before the first prefix.
func NewRIBWriter(w io.Writer, collectorID netip.Addr, viewName string, peers []Peer, timestamp time.Time) *RIBWriter {
	return &RIBWriter{
		w:         NewWriter(w),
		timestamp: timestamp,
		index: &PeerIndexTable{
			CollectorID: collectorID,
			ViewName:    viewName,
			Peers:       peers,
		},
	}
}

func (rw *RIBWriter) writeIndex() error {
	if rw.wroteIdx {
		return nil
	}
	rw.wroteIdx = true
	return rw.w.WriteRecord(&Record{
		Timestamp: rw.timestamp,
		Type:      TypeTableDumpV2,
		Subtype:   SubtypePeerIndexTable,
		Body:      rw.index,
	})
}

// WritePrefix writes the RIB record for one prefix. Entries reference
// peers by index into the writer's peer table.
func (rw *RIBWriter) WritePrefix(prefix netip.Prefix, entries []RIBEntry) error {
	if err := rw.writeIndex(); err != nil {
		return err
	}
	for _, e := range entries {
		if int(e.PeerIndex) >= len(rw.index.Peers) {
			return fmt.Errorf("mrt: RIB entry peer index %d out of range (have %d peers)",
				e.PeerIndex, len(rw.index.Peers))
		}
	}
	sub := uint16(SubtypeRIBIPv4Unicast)
	if prefix.Addr().Is6() {
		sub = SubtypeRIBIPv6Unicast
	}
	rec := &Record{
		Timestamp: rw.timestamp,
		Type:      TypeTableDumpV2,
		Subtype:   sub,
		Body:      &RIB{Sequence: rw.seq, Prefix: prefix, Entries: entries},
	}
	rw.seq++
	return rw.w.WriteRecord(rec)
}

// Flush writes the peer index table even if no prefixes were written.
func (rw *RIBWriter) Flush() error { return rw.writeIndex() }

// RIBReader iterates a TABLE_DUMP_V2 snapshot, resolving peer indexes
// through the PEER_INDEX_TABLE. Non-RIB records in the stream are
// skipped.
type RIBReader struct {
	r     *Reader
	index *PeerIndexTable
	// current record being drained
	rib  *RIB
	next int
}

// NewRIBReader returns a flattening reader over an MRT stream.
func NewRIBReader(r io.Reader) *RIBReader {
	return &RIBReader{r: NewReader(r)}
}

// Entry is one flattened (prefix, peer, route) tuple.
type Entry struct {
	Prefix     netip.Prefix
	Peer       Peer
	Originated time.Time
	RIBEntry   *RIBEntry
}

// Next returns the next flattened entry, or io.EOF.
func (rr *RIBReader) Next() (*Entry, error) {
	for {
		if rr.rib != nil && rr.next < len(rr.rib.Entries) {
			e := &rr.rib.Entries[rr.next]
			rr.next++
			if rr.index == nil {
				return nil, fmt.Errorf("mrt: RIB entry before PEER_INDEX_TABLE")
			}
			if int(e.PeerIndex) >= len(rr.index.Peers) {
				return nil, fmt.Errorf("mrt: RIB entry peer index %d out of range", e.PeerIndex)
			}
			return &Entry{
				Prefix:     rr.rib.Prefix,
				Peer:       rr.index.Peers[e.PeerIndex],
				Originated: e.Originated,
				RIBEntry:   e,
			}, nil
		}
		rec, err := rr.r.Next()
		if err != nil {
			return nil, err
		}
		switch body := rec.Body.(type) {
		case *PeerIndexTable:
			rr.index = body
		case *RIB:
			rr.rib, rr.next = body, 0
		default:
			// skip unrelated records
		}
	}
}

// PeerIndex returns the snapshot's peer table once it has been read.
func (rr *RIBReader) PeerIndex() *PeerIndexTable { return rr.index }
