package mrt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"github.com/asrank-go/asrank/internal/bgp"
)

// TableDump is a legacy TABLE_DUMP (v1) record: one peer's route for one
// IPv4 prefix (RFC 6396 §4.2). Route Views archives before ~2003, the
// early part of the paper's 1998–2013 study window, use this format.
type TableDump struct {
	ViewNumber uint16
	Sequence   uint16
	Prefix     netip.Prefix
	Status     uint8
	Originated time.Time
	PeerAddr   netip.Addr
	PeerAS     uint32 // 2-byte on the wire
	Attrs      *bgp.PathAttributes
}

func (t *TableDump) appendTo(dst []byte) ([]byte, error) {
	if !t.Prefix.Addr().Is4() || !t.PeerAddr.Is4() {
		return nil, fmt.Errorf("mrt: TABLE_DUMP supports only IPv4 here")
	}
	if t.PeerAS > 0xffff {
		return nil, fmt.Errorf("mrt: TABLE_DUMP peer AS %d does not fit 2 bytes", t.PeerAS)
	}
	dst = binary.BigEndian.AppendUint16(dst, t.ViewNumber)
	dst = binary.BigEndian.AppendUint16(dst, t.Sequence)
	a := t.Prefix.Addr().As4()
	dst = append(dst, a[:]...)
	dst = append(dst, byte(t.Prefix.Bits()), t.Status)
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.Originated.Unix()))
	p := t.PeerAddr.As4()
	dst = append(dst, p[:]...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(t.PeerAS))
	// TABLE_DUMP predates 4-byte ASNs: attributes use 2-byte AS_PATH.
	attrs, err := t.Attrs.Encode(false)
	if err != nil {
		return nil, err
	}
	if len(attrs) > 0xffff {
		return nil, fmt.Errorf("mrt: TABLE_DUMP attributes too long")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
	return append(dst, attrs...), nil
}

func parseTableDump(b []byte) (*TableDump, error) {
	// Fixed part: 2+2+4+1+1+4+4+2+2 = 22 bytes.
	if len(b) < 22 {
		return nil, errShort
	}
	t := &TableDump{
		ViewNumber: binary.BigEndian.Uint16(b),
		Sequence:   binary.BigEndian.Uint16(b[2:]),
	}
	addr := netip.AddrFrom4([4]byte(b[4:8]))
	bits := int(b[8])
	if bits > 32 {
		return nil, fmt.Errorf("mrt: TABLE_DUMP mask %d", bits)
	}
	t.Prefix = netip.PrefixFrom(addr, bits)
	t.Status = b[9]
	t.Originated = time.Unix(int64(binary.BigEndian.Uint32(b[10:])), 0).UTC()
	t.PeerAddr = netip.AddrFrom4([4]byte(b[14:18]))
	t.PeerAS = uint32(binary.BigEndian.Uint16(b[18:]))
	alen := int(binary.BigEndian.Uint16(b[20:]))
	b = b[22:]
	if len(b) < alen {
		return nil, errShort
	}
	attrs, err := bgp.ParseAttributes(b[:alen], false)
	if err != nil {
		return nil, err
	}
	t.Attrs = attrs
	return t, nil
}
