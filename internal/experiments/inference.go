package experiments

import (
	"fmt"

	"github.com/asrank-go/asrank/internal/baseline"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/stats"
	"github.com/asrank-go/asrank/internal/topology"
	"github.com/asrank-go/asrank/internal/validation"
)

// R01DataSummary reproduces the input-data summary: the corpus a
// collector deployment yields and what sanitization removed.
func R01DataSummary(l *Lab) *Report {
	topo := l.Topo()
	sim := l.Sim()
	clean, san := l.Clean()

	ts := topo.Stats()
	tt := stats.NewTable("Ground-truth topology",
		"ASes", "links", "p2c", "p2p", "tier1", "transit", "stub", "content", "prefixes")
	tt.AddRow(ts.ASes, ts.Links, ts.P2CLinks, ts.P2PLinks, ts.Tier1s, ts.Transit, ts.Stubs, ts.Content, ts.Prefixes)

	ct := stats.NewTable("Collected corpus", "VPs", "partial VPs", "paths", "observed ASes", "observed links")
	ct.AddRow(len(sim.VPs), len(sim.PartialVPs), sim.Dataset.NumPaths(),
		len(clean.ASes()), len(clean.Links()))

	st := stats.NewTable("Sanitization (step 1)",
		"input", "kept", "prepending", "loops", "reserved", "dups", "injected prepend", "injected poison", "injected leaks")
	st.AddRow(san.Input, san.Kept, san.PrependingRemoved, san.LoopDiscarded,
		san.ReservedDiscarded, san.Duplicates,
		sim.Artifacts.Prepended, sim.Artifacts.Poisoned, sim.Artifacts.PrivateLeaks)

	cov := float64(len(clean.Links())) / float64(ts.Links)
	return &Report{
		ID:    "R1",
		Title: "input data summary",
		Sections: []fmt.Stringer{tt, ct, st,
			Textf("link visibility: %.1f%% of true links observed from %d VPs\n", cov*100, len(sim.VPs))},
	}
}

// R02PipelineSteps reproduces the inference-pipeline table: links
// labeled per step.
func R02PipelineSteps(l *Lab) *Report {
	res := l.Infer()
	truth := l.Topo().Links()
	t := stats.NewTable("Links labeled per pipeline step",
		"step", "c2p", "p2p", "PPV vs truth")
	for _, c := range res.CountsByStep() {
		sub := map[paths.Link]topology.Relationship{}
		for link, s := range res.Steps {
			if s == c.Step {
				sub[link] = res.Rels[link]
			}
		}
		m := validation.Evaluate(sub, truth)
		t.AddRow(c.Step.String(), c.C2P, c.P2P, m.Overall())
	}
	return &Report{
		ID:    "R2",
		Title: "inference pipeline steps",
		Sections: []fmt.Stringer{t,
			Textf("clique: %v\npoisoned paths discarded: %d\nprovider-less ASes: %d\n",
				res.Clique, res.PoisonedPaths, len(res.Providerless))},
	}
}

// R03CliqueEvolution reproduces the clique-over-time figure.
func R03CliqueEvolution(l *Lab) *Report {
	series := l.Series()
	labels := l.SeriesLabels()
	snaps := l.EpochSnapshots()
	sizeTrue := make([]float64, len(series))
	sizeInferred := make([]float64, len(series))
	precision := make([]float64, len(series))
	for i, topo := range series {
		clique := snaps[i].Clique
		tier1 := map[uint32]bool{}
		for _, a := range topo.Tier1s() {
			tier1[a] = true
		}
		ok := 0
		for _, m := range clique {
			if tier1[m] {
				ok++
			}
		}
		sizeTrue[i] = float64(len(tier1))
		sizeInferred[i] = float64(len(clique))
		if len(clique) > 0 {
			precision[i] = float64(ok) / float64(len(clique))
		}
	}
	return &Report{
		ID:    "R3",
		Title: "clique evolution across snapshots",
		Sections: []fmt.Stringer{
			stats.Series{Label: "true clique size", XLabel: labels, Y: sizeTrue},
			stats.Series{Label: "inferred clique size", XLabel: labels, Y: sizeInferred},
			stats.Series{Label: "clique precision", XLabel: labels, Y: precision},
		},
	}
}

// R04ValidationCorpus reproduces the validation-data table: corpus
// composition by source.
func R04ValidationCorpus(l *Lab) *Report {
	corpus := l.Corpus()
	st := corpus.Stats()
	t := stats.NewTable("Validation corpus", "source", "links")
	t.AddRow("directly reported", st.BySource[validation.SourceReported])
	t.AddRow("RPSL policy", st.BySource[validation.SourceRPSL])
	t.AddRow("BGP communities", st.BySource[validation.SourceCommunities])
	t.AddRow("multi-source", st.MultiSrc)
	t.AddRow("conflicts dropped", st.Conflicts)
	t.AddRow("total", st.Total)

	// Coverage the way the paper reports it: validated ∩ observed over
	// observed. RPSL and communities also describe links no VP sees.
	clean, _ := l.Clean()
	observed := clean.Links()
	inObserved := 0
	for link := range corpus.Entries() {
		if _, ok := observed[link]; ok {
			inObserved++
		}
	}
	frac := float64(inObserved) / float64(len(observed))
	return &Report{
		ID:    "R4",
		Title: "validation corpus composition",
		Sections: []fmt.Stringer{t,
			Textf("corpus covers %d of %d observed links = %.1f%% (paper: 34.6%%)\n"+
				"corpus also holds %d links invisible to the VPs\nc2p %d, p2p %d\n",
				inObserved, len(observed), frac*100, st.Total-inObserved, st.C2P, st.P2P)},
	}
}

// R05PPV reproduces the headline accuracy table: PPV against the
// validation corpus and against full ground truth, plus per-step PPV.
func R05PPV(l *Lab) *Report {
	res := l.Infer()
	truth := l.Topo().Links()
	corpus := l.Corpus()

	mCorpus := validation.EvaluateCorpus(res.Rels, corpus)
	mTruth := validation.Evaluate(res.Rels, truth)
	t := stats.NewTable("PPV of inferred relationships",
		"evaluated against", "c2p PPV", "p2p PPV", "overall", "coverage")
	t.AddRow("validation corpus", mCorpus.C2PPPV(), mCorpus.P2PPPV(), mCorpus.Overall(), mCorpus.Coverage)
	t.AddRow("full ground truth", mTruth.C2PPPV(), mTruth.P2PPPV(), mTruth.Overall(), mTruth.Coverage)

	byStep := validation.StepMetrics(res, truth)
	ts := stats.NewTable("PPV per pipeline step (vs ground truth)",
		"step", "links", "PPV")
	for _, s := range validation.OrderedSteps(byStep) {
		m := byStep[s]
		ts.AddRow(s.String(), m.C2PTotal+m.P2PTotal, m.Overall())
	}
	return &Report{
		ID:       "R5",
		Title:    "validation PPV (paper: c2p 99.6%, p2p 98.7% on validated subset)",
		Sections: []fmt.Stringer{t, ts},
	}
}

// R06Baselines reproduces the comparison with prior algorithms.
func R06Baselines(l *Lab) *Report {
	clean, _ := l.Clean()
	res := l.Infer()

	// Xia-Gao is seeded with half of the validated *observed* links (its
	// method starts from partial registry truth); all four algorithms
	// are then scored on the observed links outside that seed, so nobody
	// is graded on answers it was handed.
	observed := clean.Links()
	rng := stats.NewRNG(l.Cfg.Seed + 6)
	seed := map[paths.Link]topology.Relationship{}
	for _, link := range paths.SortedLinks(observed) {
		if e, ok := l.Corpus().Entries()[link]; ok && rng.Bool(0.5) {
			seed[link] = e.Rel
		}
	}
	truth := map[paths.Link]topology.Relationship{}
	for link, rel := range l.Topo().Links() {
		if _, seeded := seed[link]; !seeded {
			truth[link] = rel
		}
	}

	t := stats.NewTable("Comparison with prior algorithms (vs ground truth, unseeded links)",
		"algorithm", "c2p PPV", "p2p PPV", "overall", "links")
	add := func(name string, rels map[paths.Link]topology.Relationship) {
		m := validation.Evaluate(rels, truth)
		t.AddRow(name, m.C2PPPV(), m.P2PPPV(), m.Overall(), m.C2PTotal+m.P2PTotal)
	}
	add("ASRank (this work)", res.Rels)
	add("Gao 2001", baseline.Gao(clean, baseline.GaoOptions{}))
	add("Xia-Gao 2004", baseline.XiaGao(clean, seed))
	add("UCLA 2010", baseline.UCLA(clean, baseline.UCLAOptions{}))
	return &Report{
		ID:    "R6",
		Title: "comparison with Gao, Xia-Gao, UCLA",
		Sections: []fmt.Stringer{t,
			Textf("Xia-Gao seeded with %d validated links; scoring excludes them for all algorithms\n", len(seed))},
	}
}
