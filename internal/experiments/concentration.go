package experiments

import (
	"fmt"
	"sort"

	"github.com/asrank-go/asrank/internal/cone"
	"github.com/asrank-go/asrank/internal/stats"
)

// R14ConeConcentration quantifies how concentrated transit is at the
// top of the hierarchy: the fraction of all observed ASes inside the
// union of the top-k provider/peer cones, and the Gini coefficient of
// cone sizes — the paper's "a handful of networks reach most of the
// Internet through their customers" observation.
func R14ConeConcentration(l *Lab) *Report {
	res := l.Infer()
	rels := cone.NewRelations(res.Rels)
	sets := rels.ProviderPeerObserved(res.Dataset)
	sizes := sets.Sizes()
	order := cone.Rank(sizes, res.TransitDegree)
	totalASes := len(rels.ASes())

	t := stats.NewTable("Coverage of the top-k PP cones",
		"top k", "union cone size", "fraction of ASes")
	union := map[uint32]bool{}
	ks := []int{1, 3, 5, 10, 20}
	next := 0
	for _, k := range ks {
		if k > len(order) {
			k = len(order)
		}
		for ; next < k; next++ {
			for m := range sets[order[next]] {
				union[m] = true
			}
		}
		t.AddRow(k, len(union), float64(len(union))/float64(totalASes))
	}

	var coneSizes []float64
	for _, asn := range rels.ASes() {
		coneSizes = append(coneSizes, float64(sizes[asn]))
	}
	sort.Float64s(coneSizes)
	gini := stats.Gini(coneSizes)
	return &Report{
		ID:    "R14",
		Title: "customer-cone concentration (extension)",
		Sections: []fmt.Stringer{t,
			Textf("Gini coefficient of PP cone sizes: %.3f (1 = all transit in one AS)\n", gini)},
	}
}
