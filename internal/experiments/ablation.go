package experiments

import (
	"fmt"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/cone"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/stats"
	"github.com/asrank-go/asrank/internal/validation"
)

// R12VantagePoints reproduces the vantage-point visibility analysis:
// how link coverage, inference accuracy, clique recall, and cone recall
// grow with the number of VPs — the limitation the paper repeatedly
// flags.
func R12VantagePoints(l *Lab) *Report {
	topo := l.Topo()
	truth := topo.Links()
	tier1 := map[uint32]bool{}
	for _, a := range topo.Tier1s() {
		tier1[a] = true
	}

	sweeps := []int{1, 2, 5, 10, 20, 50}
	t := stats.NewTable("Effect of vantage-point count",
		"VPs", "paths", "link coverage", "c2p PPV", "p2p PPV", "clique recall", "cone recall")
	for _, n := range sweeps {
		opts := bgpsim.DefaultOptions(l.Cfg.Seed + int64(n))
		opts.NumVPs = n
		sim := mustRun(topo, opts)
		clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
		res := core.Infer(clean, core.Options{})
		m := validation.Evaluate(res.Rels, truth)
		coverage := float64(len(clean.Links())) / float64(len(truth))

		cliqueHit := 0
		for _, c := range res.Clique {
			if tier1[c] {
				cliqueHit++
			}
		}
		cliqueRecall := float64(cliqueHit) / float64(len(tier1))

		// Cone recall: recursive inferred cone of true tier-1s vs truth.
		rels := cone.NewRelations(res.Rels)
		var hit, total int
		for t1 := range tier1 {
			trueCone := topo.TrueCone(t1)
			inf := rels.RecursiveOne(t1)
			for member := range inf {
				if trueCone[member] {
					hit++
				}
			}
			total += len(trueCone)
		}
		coneRecall := 0.0
		if total > 0 {
			coneRecall = float64(hit) / float64(total)
		}
		t.AddRow(n, clean.NumPaths(), coverage, m.C2PPPV(), m.P2PPPV(), cliqueRecall, coneRecall)
	}
	return &Report{
		ID:       "R12",
		Title:    "vantage-point ablation (visibility limits)",
		Sections: []fmt.Stringer{t},
	}
}

// All runs every experiment in order.
func All(l *Lab) []*Report {
	return []*Report{
		R01DataSummary(l),
		R02PipelineSteps(l),
		R03CliqueEvolution(l),
		R04ValidationCorpus(l),
		R05PPV(l),
		R06Baselines(l),
		R07ConeDefinitions(l),
		R08ConeEvolution(l),
		R09RankStability(l),
		R10Flattening(l),
		R11DegreeVsCone(l),
		R12VantagePoints(l),
		R13Ablations(l),
		R14ConeConcentration(l),
	}
}

// ByID returns the experiment function with the given ID, or nil.
func ByID(id string) func(*Lab) *Report {
	switch id {
	case "R1", "R01":
		return R01DataSummary
	case "R2", "R02":
		return R02PipelineSteps
	case "R3", "R03":
		return R03CliqueEvolution
	case "R4", "R04":
		return R04ValidationCorpus
	case "R5", "R05":
		return R05PPV
	case "R6", "R06":
		return R06Baselines
	case "R7", "R07":
		return R07ConeDefinitions
	case "R8", "R08":
		return R08ConeEvolution
	case "R9", "R09":
		return R09RankStability
	case "R10":
		return R10Flattening
	case "R11":
		return R11DegreeVsCone
	case "R12":
		return R12VantagePoints
	case "R13":
		return R13Ablations
	case "R14":
		return R14ConeConcentration
	}
	return nil
}

// IDs lists every experiment ID in order.
func IDs() []string {
	return []string{"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11", "R12", "R13", "R14"}
}
