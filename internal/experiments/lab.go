// Package experiments implements the reproduction of the paper's
// evaluation: every table and figure (R1–R12 in DESIGN.md) is a
// function that builds its workload, runs the system, and renders a
// plain-text table or series. The cmd/experiments binary and the
// top-level benchmarks both drive this package.
package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/rpsl"
	"github.com/asrank-go/asrank/internal/topology"
	"github.com/asrank-go/asrank/internal/validation"
	"github.com/asrank-go/asrank/internal/warehouse"
)

// Config scales the experiment workloads.
type Config struct {
	Seed      int64
	Scale     int // AS count of the base topology
	VPs       int // vantage points in the base collection
	Snapshots int // longitudinal series length
	// Warehouse optionally names an epoch-store directory backing the
	// evolution runners (R3/R8/R9): when it already holds the series,
	// prior epochs are decoded instead of re-simulated and re-inferred;
	// when it does not, the computed series is persisted into it for
	// the next run. The directory must belong to this configuration —
	// epochs are matched by position, not by content.
	Warehouse string
}

// DefaultConfig is the full-size configuration used by the
// cmd/experiments binary. The VP density (1 per 100 ASes) matches the
// paper's setting of a few hundred full-feed VPs on a ~45k-AS Internet.
func DefaultConfig() Config {
	return Config{Seed: 20130401, Scale: 4000, VPs: 40, Snapshots: 16}
}

// BenchConfig is a reduced configuration sized for the benchmark
// harness.
func BenchConfig() Config {
	return Config{Seed: 20130401, Scale: 800, VPs: 12, Snapshots: 6}
}

// Lab lazily builds and caches the expensive shared artifacts: the base
// topology, the simulated collection, the sanitized corpus, the
// inference, and the longitudinal series.
type Lab struct {
	Cfg Config

	topo   *topology.Topology
	sim    *bgpsim.Result
	clean  *paths.Dataset
	san    paths.SanitizeStats
	res    *core.Result
	series []*topology.Topology
	snaps  []*warehouse.Snapshot
	corpus *validation.Corpus
	mrtRIB []byte
}

// NewLab returns a lab for the given configuration.
func NewLab(cfg Config) *Lab { return &Lab{Cfg: cfg} }

// Topo returns the base ground-truth topology.
func (l *Lab) Topo() *topology.Topology {
	if l.topo == nil {
		p := topology.DefaultParams(l.Cfg.Seed)
		p.ASes = l.Cfg.Scale
		l.topo = topology.Generate(p)
	}
	return l.topo
}

// Sim returns the base simulated collection.
func (l *Lab) Sim() *bgpsim.Result {
	if l.sim == nil {
		opts := bgpsim.DefaultOptions(l.Cfg.Seed)
		opts.NumVPs = l.Cfg.VPs
		res, err := bgpsim.Run(l.Topo(), opts)
		if err != nil {
			panic(fmt.Sprintf("experiments: simulation failed: %v", err))
		}
		l.sim = res
	}
	return l.sim
}

// Clean returns the sanitized corpus and the sanitization stats.
func (l *Lab) Clean() (*paths.Dataset, paths.SanitizeStats) {
	if l.clean == nil {
		l.clean, l.san = paths.Sanitize(l.Sim().Dataset, paths.SanitizeOptions{})
	}
	return l.clean, l.san
}

// Infer returns the base inference.
func (l *Lab) Infer() *core.Result {
	if l.res == nil {
		ds, _ := l.Clean()
		l.res = core.Infer(ds, core.Options{})
	}
	return l.res
}

// Series returns the longitudinal snapshot series.
func (l *Lab) Series() []*topology.Topology {
	if l.series == nil {
		p := topology.DefaultParams(l.Cfg.Seed)
		// Start smaller so the final snapshot lands near Scale.
		start := l.Cfg.Scale / 3
		if start < 100 {
			start = 100
		}
		p.ASes = start
		e := topology.DefaultEvolveParams()
		e.Snapshots = l.Cfg.Snapshots
		l.series = topology.GenerateSeries(p, e)
	}
	return l.series
}

// EpochSnapshots returns the longitudinal inference series in columnar
// (warehouse) form, one snapshot per series topology. With a warehouse
// configured and already holding the full series, prior epochs are
// decoded from the store — no simulation or inference re-runs; without
// one (or with a short store) each snapshot is simulated, sanitized,
// and inferred as before, and persisted when a warehouse is configured
// so the next run skips the recompute.
func (l *Lab) EpochSnapshots() []*warehouse.Snapshot {
	if l.snaps != nil {
		return l.snaps
	}
	series := l.Series()
	var store *warehouse.Store
	if l.Cfg.Warehouse != "" {
		st, err := warehouse.Open(l.Cfg.Warehouse, warehouse.Options{})
		if err != nil {
			panic(fmt.Sprintf("experiments: warehouse: %v", err))
		}
		store = st
	}
	if store != nil && store.Len() >= len(series) {
		out := make([]*warehouse.Snapshot, len(series))
		for i := range out {
			s, err := store.Snapshot(uint32(i))
			if err != nil {
				panic(fmt.Sprintf("experiments: warehouse epoch %d: %v", i, err))
			}
			out[i] = s
		}
		l.snaps = out
		return out
	}
	out := make([]*warehouse.Snapshot, len(series))
	for i, topo := range series {
		sim := mustRun(topo, simOptsFor(l, int64(i)))
		clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
		res := core.Infer(clean, core.Options{})
		out[i] = warehouse.FromResult(res)
		if store != nil && store.Len() == i {
			if _, err := store.Append(out[i], fmt.Sprintf("snapshot-%02d", i), ""); err != nil {
				panic(fmt.Sprintf("experiments: warehouse append %d: %v", i, err))
			}
		}
	}
	l.snaps = out
	return out
}

// SeriesLabels returns year-style labels for the series, ending at the
// paper's final snapshot year.
func (l *Lab) SeriesLabels() []string {
	n := len(l.Series())
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("%d", 2013-(n-1-i))
	}
	return labels
}

// MRT returns the base collection exported as a TABLE_DUMP_V2 snapshot.
func (l *Lab) MRT() []byte {
	if l.mrtRIB == nil {
		var buf bytes.Buffer
		ts := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
		if err := bgpsim.ExportMRT(&buf, l.Sim(), ts); err != nil {
			panic(fmt.Sprintf("experiments: MRT export failed: %v", err))
		}
		l.mrtRIB = buf.Bytes()
	}
	return l.mrtRIB
}

// Corpus returns the three-source validation corpus for the base run.
func (l *Lab) Corpus() *validation.Corpus {
	if l.corpus == nil {
		c := validation.NewCorpus()
		c.AddAll(validation.Reported(l.Topo(), 0.08, 0.01, l.Cfg.Seed), validation.SourceReported)
		autnums, err := rpsl.AutNums(rpsl.Generate(l.Topo(), rpsl.GenerateOptions{
			Seed: l.Cfg.Seed, RegisterFrac: 0.3, StaleFrac: 0.02,
		}))
		if err != nil {
			panic(fmt.Sprintf("experiments: RPSL generation failed: %v", err))
		}
		c.AddAll(rpsl.Relationships(autnums), validation.SourceRPSL)
		comm, err := validation.FromCommunitiesMRT(bytes.NewReader(l.MRT()))
		if err != nil {
			panic(fmt.Sprintf("experiments: community extraction failed: %v", err))
		}
		c.AddAll(comm, validation.SourceCommunities)
		l.corpus = c
	}
	return l.corpus
}

// Report is the rendered output of one experiment.
type Report struct {
	ID       string
	Title    string
	Sections []fmt.Stringer
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	b.WriteString(strings.Repeat("*", len(r.ID)+len(r.Title)+3))
	b.WriteString("\n\n")
	for i, s := range r.Sections {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// text is a plain-string section.
type text string

func (t text) String() string { return string(t) }

// Textf formats a plain-text report section.
func Textf(format string, args ...any) fmt.Stringer {
	return text(fmt.Sprintf(format, args...))
}
