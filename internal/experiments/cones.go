package experiments

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/cone"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/stats"
	"github.com/asrank-go/asrank/internal/topology"
)

// simOptsFor derives per-snapshot simulation options.
func simOptsFor(l *Lab, snapshot int64) bgpsim.Options {
	opts := bgpsim.DefaultOptions(l.Cfg.Seed + 1000*snapshot)
	opts.NumVPs = l.Cfg.VPs
	return opts
}

func mustRun(topo *topology.Topology, opts bgpsim.Options) *bgpsim.Result {
	res, err := bgpsim.Run(topo, opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: simulation failed: %v", err))
	}
	return res
}

// R07ConeDefinitions reproduces the cone-definition comparison: for the
// largest ASes, the recursive, BGP-observed and provider/peer cones,
// against the true cone.
func R07ConeDefinitions(l *Lab) *Report {
	topo := l.Topo()
	res := l.Infer()
	rels := cone.NewRelations(res.Rels)
	rec := rels.Recursive()
	bgp := rels.BGPObserved(res.Dataset)
	pp := rels.ProviderPeerObserved(res.Dataset)

	order := cone.Rank(pp.Sizes(), res.TransitDegree)
	top := 15
	if top > len(order) {
		top = len(order)
	}
	t := stats.NewTable("Customer cone sizes under three definitions (top 15 by PP cone)",
		"rank", "AS", "class", "recursive", "BGP-observed", "PP", "true")
	for i := 0; i < top; i++ {
		asn := order[i]
		class := "?"
		if a := topo.AS(asn); a != nil {
			class = a.Class.String()
		}
		t.AddRow(i+1, asn, class, len(rec[asn]), len(bgp[asn]), len(pp[asn]), len(topo.TrueCone(asn)))
	}

	// Distribution summary over all transit ASes (cone > 1).
	var recS, bgpS, ppS []float64
	for _, asn := range rels.ASes() {
		if len(rec[asn]) > 1 {
			recS = append(recS, float64(len(rec[asn])))
			bgpS = append(bgpS, float64(len(bgp[asn])))
			ppS = append(ppS, float64(len(pp[asn])))
		}
	}
	d := stats.NewTable("Cone size distribution (ASes with non-trivial cones)",
		"definition", "n", "mean", "median", "p90", "max")
	for _, row := range []struct {
		name string
		s    []float64
	}{{"recursive", recS}, {"BGP-observed", bgpS}, {"PP", ppS}} {
		sum := stats.Summarize(row.s)
		d.AddRow(row.name, sum.N, sum.Mean, sum.Median, sum.P90, sum.Max)
	}
	return &Report{
		ID:       "R7",
		Title:    "three cone definitions compared (recursive ⊇ BGP-observed ⊇ PP)",
		Sections: []fmt.Stringer{t, d},
	}
}

// snapshotCones derives per-snapshot PP-cone sizes and transit degrees
// from the epoch series (warehouse-backed when configured); shared by
// R8/R9. The cone slab popcount is the same PP-observed definition the
// per-snapshot inference produced.
func snapshotCones(l *Lab) ([]map[uint32]int, []map[uint32]int) {
	snaps := l.EpochSnapshots()
	ppSizes := make([]map[uint32]int, len(snaps))
	tds := make([]map[uint32]int, len(snaps))
	for i, snap := range snaps {
		pp := make(map[uint32]int, snap.NumASes())
		td := make(map[uint32]int, snap.NumASes())
		wps := snap.WordsPerCone()
		for p, asn := range snap.ASNs {
			c := 0
			for _, w := range snap.ConeWords[p*wps : (p+1)*wps] {
				c += bits.OnesCount64(w)
			}
			pp[asn] = c
			td[asn] = int(snap.TransitDegree[p])
		}
		ppSizes[i] = pp
		tds[i] = td
	}
	return ppSizes, tds
}

// R08ConeEvolution reproduces the cone-size-over-time figure for the
// largest ASes.
func R08ConeEvolution(l *Lab) *Report {
	ppSizes, tds := snapshotCones(l)
	series := l.Series()
	labels := l.SeriesLabels()
	last := len(series) - 1

	order := cone.Rank(ppSizes[last], tds[last])
	top := 5
	if top > len(order) {
		top = len(order)
	}
	var sections []fmt.Stringer
	for i := 0; i < top; i++ {
		asn := order[i]
		ys := make([]float64, len(series))
		for s := range series {
			frac := 0.0
			if n := series[s].NumASes(); n > 0 {
				frac = float64(ppSizes[s][asn]) / float64(n)
			}
			ys[s] = frac
		}
		sections = append(sections, stats.Series{
			Label:  fmt.Sprintf("AS%d PP-cone fraction of ASes", asn),
			XLabel: labels,
			Y:      ys,
		})
	}
	return &Report{
		ID:       "R8",
		Title:    "customer cone evolution of the largest ASes",
		Sections: sections,
	}
}

// R09RankStability reproduces the rank-stability analysis: Kendall tau
// between consecutive snapshots and top-10 trajectories.
func R09RankStability(l *Lab) *Report {
	ppSizes, tds := snapshotCones(l)
	series := l.Series()
	labels := l.SeriesLabels()

	taus := make([]float64, 0, len(series)-1)
	for i := 1; i < len(series); i++ {
		// Common AS set between consecutive snapshots.
		var xs, ys []float64
		for asn, sz := range ppSizes[i-1] {
			if sz2, ok := ppSizes[i][asn]; ok {
				xs = append(xs, float64(sz))
				ys = append(ys, float64(sz2))
			}
		}
		taus = append(taus, stats.KendallTau(xs, ys))
	}

	last := len(series) - 1
	order := cone.Rank(ppSizes[last], tds[last])
	top := 10
	if top > len(order) {
		top = len(order)
	}
	t := stats.NewTable("Rank trajectories of the final top 10", append([]string{"AS"}, labels...)...)
	for i := 0; i < top; i++ {
		asn := order[i]
		row := make([]any, 0, len(series)+1)
		row = append(row, asn)
		for s := range series {
			ids := make([]uint32, 0, len(ppSizes[s]))
			score := make(map[uint32]float64, len(ppSizes[s]))
			for a, sz := range ppSizes[s] {
				ids = append(ids, a)
				score[a] = float64(sz)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			ranks := stats.RankOf(ids, score)
			if r, ok := ranks[asn]; ok {
				row = append(row, r)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return &Report{
		ID:    "R9",
		Title: "AS rank stability across snapshots",
		Sections: []fmt.Stringer{
			stats.Series{Label: "Kendall tau (consecutive snapshots)", XLabel: labels[1:], Y: taus},
			t,
		},
	}
}

// R10Flattening reproduces the hierarchy-flattening figure: peering
// share and mean path length over time.
func R10Flattening(l *Lab) *Report {
	series := l.Series()
	labels := l.SeriesLabels()
	truePeer := make([]float64, len(series))
	inferredPeer := make([]float64, len(series))
	pathLen := make([]float64, len(series))
	for i, topo := range series {
		st := topo.Stats()
		truePeer[i] = float64(st.P2PLinks) / float64(st.Links)
		sim := mustRun(topo, simOptsFor(l, int64(i)))
		clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
		res := core.Infer(clean, core.Options{})
		peers := 0
		for _, rel := range res.Rels {
			if rel == topology.P2P {
				peers++
			}
		}
		inferredPeer[i] = float64(peers) / float64(len(res.Rels))
		pathLen[i] = clean.MeanPathLength()
	}
	return &Report{
		ID:    "R10",
		Title: "flattening: peering share and path length over time",
		Sections: []fmt.Stringer{
			stats.Series{Label: "true p2p link share", XLabel: labels, Y: truePeer},
			stats.Series{Label: "inferred p2p link share", XLabel: labels, Y: inferredPeer},
			stats.Series{Label: "mean AS path length", XLabel: labels, Y: pathLen},
		},
	}
}

// R11DegreeVsCone reproduces the transit-degree vs cone-size relation.
func R11DegreeVsCone(l *Lab) *Report {
	res := l.Infer()
	rels := cone.NewRelations(res.Rels)
	pp := rels.ProviderPeerObserved(res.Dataset).Sizes()

	var xs, ys []float64
	for asn, td := range res.TransitDegree {
		if td > 0 {
			xs = append(xs, float64(td))
			ys = append(ys, float64(pp[asn]))
		}
	}
	r := stats.PearsonLogLog(xs, ys)

	// Bucket the relation for a text rendering.
	type bucket struct {
		lo, hi int
		sizes  []float64
	}
	buckets := []*bucket{
		{1, 2, nil}, {3, 9, nil}, {10, 29, nil}, {30, 99, nil}, {100, 1 << 30, nil},
	}
	for asn, td := range res.TransitDegree {
		for _, b := range buckets {
			if td >= b.lo && td <= b.hi {
				b.sizes = append(b.sizes, float64(pp[asn]))
			}
		}
	}
	t := stats.NewTable("PP cone size by transit degree", "transit degree", "ASes", "median cone", "max cone")
	for _, b := range buckets {
		if len(b.sizes) == 0 {
			continue
		}
		s := stats.Summarize(b.sizes)
		label := fmt.Sprintf("%d-%d", b.lo, b.hi)
		if b.hi > 1<<20 {
			label = fmt.Sprintf("%d+", b.lo)
		}
		t.AddRow(label, s.N, s.Median, s.Max)
	}
	return &Report{
		ID:    "R11",
		Title: "transit degree vs customer cone size",
		Sections: []fmt.Stringer{t,
			Textf("log-log Pearson correlation: %.3f\n", r)},
	}
}
