package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// testLab is a very small lab shared by the experiment smoke tests.
func testLab() *Lab {
	return NewLab(Config{Seed: 20130401, Scale: 300, VPs: 8, Snapshots: 3})
}

func TestEveryExperimentRuns(t *testing.T) {
	l := testLab()
	for _, id := range IDs() {
		fn := ByID(id)
		if fn == nil {
			t.Fatalf("no experiment for %s", id)
		}
		rep := fn(l)
		if rep.ID == "" || rep.Title == "" || len(rep.Sections) == 0 {
			t.Errorf("%s produced an empty report", id)
		}
		out := rep.String()
		if !strings.Contains(out, rep.Title) {
			t.Errorf("%s report missing title", id)
		}
		if len(out) < 50 {
			t.Errorf("%s report suspiciously short:\n%s", id, out)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if ByID("R99") != nil {
		t.Error("unknown ID should return nil")
	}
	if ByID("R01") == nil || ByID("R1") == nil {
		t.Error("zero-padded aliases should work")
	}
}

func TestAllMatchesIDs(t *testing.T) {
	l := testLab()
	reports := All(l)
	ids := IDs()
	if len(reports) != len(ids) {
		t.Fatalf("All returned %d reports, IDs lists %d", len(reports), len(ids))
	}
	for i, rep := range reports {
		if rep.ID != ids[i] {
			t.Errorf("report %d has ID %s, want %s", i, rep.ID, ids[i])
		}
	}
}

func TestLabCaching(t *testing.T) {
	l := testLab()
	if l.Topo() != l.Topo() {
		t.Error("Topo not cached")
	}
	if l.Sim() != l.Sim() {
		t.Error("Sim not cached")
	}
	if l.Infer() != l.Infer() {
		t.Error("Infer not cached")
	}
	c1, _ := l.Clean()
	c2, _ := l.Clean()
	if c1 != c2 {
		t.Error("Clean not cached")
	}
	if len(l.Series()) != 3 {
		t.Errorf("series length = %d", len(l.Series()))
	}
	if len(l.SeriesLabels()) != 3 || l.SeriesLabels()[2] != "2013" {
		t.Errorf("labels = %v", l.SeriesLabels())
	}
	if l.Corpus().Len() == 0 {
		t.Error("corpus empty")
	}
	if len(l.MRT()) == 0 {
		t.Error("MRT export empty")
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{ID: "RX", Title: "demo", Sections: []fmt.Stringer{Textf("hello %d\n", 42)}}
	out := rep.String()
	if !strings.Contains(out, "RX — demo") || !strings.Contains(out, "hello 42") {
		t.Errorf("rendering wrong:\n%s", out)
	}
}
