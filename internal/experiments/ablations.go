package experiments

import (
	"fmt"

	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/stats"
	"github.com/asrank-go/asrank/internal/validation"
)

// R13Ablations quantifies the design choices DESIGN.md calls out by
// re-running inference with individual provisions disabled or detuned
// and scoring each variant against ground truth.
func R13Ablations(l *Lab) *Report {
	clean, _ := l.Clean()
	truth := l.Topo().Links()

	t := stats.NewTable("Pipeline ablations (vs ground truth)",
		"variant", "c2p PPV", "p2p PPV", "overall", "clique size")
	variant := func(name string, opts core.Options) {
		res := core.Infer(clean, opts)
		m := validation.Evaluate(res.Rels, truth)
		t.AddRow(name, m.C2PPPV(), m.P2PPPV(), m.Overall(), len(res.Clique))
	}
	variant("full pipeline", core.Options{})
	variant("no provider-less detection", core.Options{DisableProviderless: true})
	variant("no degree fold (step 8)", core.Options{DisableFold: true})
	variant("single top-down pass", core.Options{TopDownPasses: 1})
	variant("clique seed 5 (default 10)", core.Options{CliqueSeedSize: 5})
	variant("true clique preset", core.Options{Clique: l.Topo().Tier1s()})

	return &Report{
		ID:    "R13",
		Title: "ablations of the pipeline's design choices",
		Sections: []fmt.Stringer{t,
			Textf("the 'true clique preset' row bounds how much clique-inference error costs\n")},
	}
}
