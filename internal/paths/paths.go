// Package paths models the corpus of AS paths that relationship
// inference consumes: paths observed at route collectors from vantage
// point (VP) ASes, with the sanitization pass the ASRank paper applies
// before inference (prepending compression, loop/reserved/IXP filtering)
// and codecs for a plain-text interchange format and MRT RIB snapshots.
package paths

import (
	"fmt"
	"net/netip"
	"sort"
)

// Path is one AS path as seen at a collector: ASNs[0] is the VP (the
// collector's BGP peer) and ASNs[len-1] is the origin AS of Prefix.
type Path struct {
	Collector string
	Prefix    netip.Prefix
	ASNs      []uint32
}

// VP returns the vantage-point AS (first hop) of the path.
func (p Path) VP() uint32 {
	if len(p.ASNs) == 0 {
		return 0
	}
	return p.ASNs[0]
}

// Origin returns the origin AS (last hop) of the path.
func (p Path) Origin() uint32 {
	if len(p.ASNs) == 0 {
		return 0
	}
	return p.ASNs[len(p.ASNs)-1]
}

// Link is an undirected AS adjacency, normalized so A < B.
type Link struct {
	A, B uint32
}

// NewLink returns the normalized link between two ASes.
func NewLink(x, y uint32) Link {
	if x > y {
		x, y = y, x
	}
	return Link{A: x, B: y}
}

// String renders the link as "a-b".
func (l Link) String() string { return fmt.Sprintf("%d-%d", l.A, l.B) }

// Dataset is a corpus of AS paths.
type Dataset struct {
	Paths []Path
}

// Add appends a path to the dataset.
func (d *Dataset) Add(p Path) { d.Paths = append(d.Paths, p) }

// NumPaths returns the number of paths.
func (d *Dataset) NumPaths() int { return len(d.Paths) }

// ASes returns the set of ASNs appearing anywhere in the corpus.
func (d *Dataset) ASes() map[uint32]bool {
	set := make(map[uint32]bool)
	for _, p := range d.Paths {
		for _, a := range p.ASNs {
			set[a] = true
		}
	}
	return set
}

// VPs returns the set of vantage-point ASes with the number of paths
// each contributes.
func (d *Dataset) VPs() map[uint32]int {
	vps := make(map[uint32]int)
	for _, p := range d.Paths {
		if len(p.ASNs) > 0 {
			vps[p.ASNs[0]]++
		}
	}
	return vps
}

// Links returns every undirected adjacency with the number of paths it
// appears in.
func (d *Dataset) Links() map[Link]int {
	links := make(map[Link]int)
	for _, p := range d.Paths {
		for i := 0; i+1 < len(p.ASNs); i++ {
			links[NewLink(p.ASNs[i], p.ASNs[i+1])]++
		}
	}
	return links
}

// SortedLinks returns the keys of Links in deterministic order.
func SortedLinks(links map[Link]int) []Link {
	out := make([]Link, 0, len(links))
	for l := range links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Degrees returns the node degree (number of distinct neighbors) of
// every AS in the corpus.
func (d *Dataset) Degrees() map[uint32]int {
	neighbors := make(map[uint32]map[uint32]bool)
	addNbr := func(a, b uint32) {
		m, ok := neighbors[a]
		if !ok {
			m = make(map[uint32]bool)
			neighbors[a] = m
		}
		m[b] = true
	}
	for _, p := range d.Paths {
		for i := 0; i+1 < len(p.ASNs); i++ {
			addNbr(p.ASNs[i], p.ASNs[i+1])
			addNbr(p.ASNs[i+1], p.ASNs[i])
		}
	}
	deg := make(map[uint32]int, len(neighbors))
	for a, m := range neighbors {
		deg[a] = len(m)
	}
	return deg
}

// TransitDegrees returns the transit degree of every AS: the number of
// distinct neighbors an AS appears adjacent to in paths where it is in a
// transit (non-edge) position. Stub ASes and pure VP/origin endpoints
// have transit degree 0. This is the paper's primary ranking metric.
func (d *Dataset) TransitDegrees() map[uint32]int {
	transit := make(map[uint32]map[uint32]bool)
	for _, p := range d.Paths {
		for i := 1; i+1 < len(p.ASNs); i++ {
			mid := p.ASNs[i]
			m, ok := transit[mid]
			if !ok {
				m = make(map[uint32]bool)
				transit[mid] = m
			}
			m[p.ASNs[i-1]] = true
			m[p.ASNs[i+1]] = true
		}
	}
	out := make(map[uint32]int, len(transit))
	for a, m := range transit {
		out[a] = len(m)
	}
	return out
}

// MeanPathLength returns the mean number of AS hops (links) per path.
func (d *Dataset) MeanPathLength() float64 {
	if len(d.Paths) == 0 {
		return 0
	}
	var total int
	for _, p := range d.Paths {
		total += len(p.ASNs) - 1
	}
	return float64(total) / float64(len(d.Paths))
}
