package paths

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/asrank-go/asrank/internal/bgp"
	"github.com/asrank-go/asrank/internal/mrt"
)

func mkPath(asns ...uint32) Path {
	return Path{Collector: "c1", Prefix: netip.MustParsePrefix("192.0.2.0/24"), ASNs: asns}
}

func TestPathEndpoints(t *testing.T) {
	p := mkPath(10, 20, 30)
	if p.VP() != 10 || p.Origin() != 30 {
		t.Errorf("VP=%d Origin=%d", p.VP(), p.Origin())
	}
	var empty Path
	if empty.VP() != 0 || empty.Origin() != 0 {
		t.Error("empty path endpoints should be 0")
	}
}

func TestNewLinkNormalizes(t *testing.T) {
	if NewLink(5, 3) != (Link{3, 5}) {
		t.Error("link not normalized")
	}
	if NewLink(3, 5) != NewLink(5, 3) {
		t.Error("link not symmetric")
	}
	if NewLink(3, 5).String() != "3-5" {
		t.Errorf("String = %q", NewLink(3, 5).String())
	}
}

func TestLinkQuickNormalized(t *testing.T) {
	f := func(a, b uint32) bool {
		l := NewLink(a, b)
		return l.A <= l.B && l == NewLink(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildDataset() *Dataset {
	ds := &Dataset{}
	ds.Add(mkPath(10, 20, 30))
	ds.Add(mkPath(10, 20, 40))
	ds.Add(mkPath(11, 20, 30))
	return ds
}

func TestLinks(t *testing.T) {
	links := buildDataset().Links()
	if links[NewLink(10, 20)] != 2 {
		t.Errorf("10-20 count = %d", links[NewLink(10, 20)])
	}
	if links[NewLink(20, 30)] != 2 || links[NewLink(20, 40)] != 1 || links[NewLink(11, 20)] != 1 {
		t.Errorf("links = %v", links)
	}
	if len(links) != 4 {
		t.Errorf("link count = %d", len(links))
	}
}

func TestSortedLinks(t *testing.T) {
	links := buildDataset().Links()
	sorted := SortedLinks(links)
	for i := 1; i < len(sorted); i++ {
		a, b := sorted[i-1], sorted[i]
		if a.A > b.A || (a.A == b.A && a.B >= b.B) {
			t.Fatalf("links not sorted: %v before %v", a, b)
		}
	}
}

func TestDegreesAndTransitDegrees(t *testing.T) {
	ds := buildDataset()
	deg := ds.Degrees()
	if deg[20] != 4 {
		t.Errorf("degree(20) = %d, want 4", deg[20])
	}
	if deg[10] != 1 || deg[30] != 1 {
		t.Errorf("edge degrees wrong: %v", deg)
	}
	td := ds.TransitDegrees()
	if td[20] != 4 {
		t.Errorf("transit degree(20) = %d, want 4", td[20])
	}
	if td[10] != 0 || td[30] != 0 {
		t.Errorf("stub transit degrees should be 0: %v", td)
	}
}

func TestVPsAndASes(t *testing.T) {
	ds := buildDataset()
	vps := ds.VPs()
	if vps[10] != 2 || vps[11] != 1 {
		t.Errorf("VPs = %v", vps)
	}
	ases := ds.ASes()
	for _, a := range []uint32{10, 11, 20, 30, 40} {
		if !ases[a] {
			t.Errorf("AS %d missing", a)
		}
	}
	if len(ases) != 5 {
		t.Errorf("AS count = %d", len(ases))
	}
}

func TestMeanPathLength(t *testing.T) {
	ds := buildDataset()
	if got := ds.MeanPathLength(); got != 2 {
		t.Errorf("mean path length = %v", got)
	}
	var empty Dataset
	if empty.MeanPathLength() != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestSanitizePrepending(t *testing.T) {
	ds := &Dataset{}
	ds.Add(mkPath(10, 20, 20, 20, 30))
	out, stats := Sanitize(ds, SanitizeOptions{})
	if stats.PrependingRemoved != 1 || stats.Kept != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if !reflect.DeepEqual(out.Paths[0].ASNs, []uint32{10, 20, 30}) {
		t.Errorf("path = %v", out.Paths[0].ASNs)
	}
}

func TestSanitizeLoop(t *testing.T) {
	ds := &Dataset{}
	ds.Add(mkPath(10, 20, 30, 20, 40))
	out, stats := Sanitize(ds, SanitizeOptions{})
	if stats.LoopDiscarded != 1 || out.NumPaths() != 0 {
		t.Errorf("loop not discarded: %+v", stats)
	}
}

func TestSanitizeReserved(t *testing.T) {
	ds := &Dataset{}
	ds.Add(mkPath(10, 64512, 30)) // private ASN
	ds.Add(mkPath(10, 23456, 30)) // AS_TRANS
	out, stats := Sanitize(ds, SanitizeOptions{})
	if stats.ReservedDiscarded != 2 || out.NumPaths() != 0 {
		t.Errorf("reserved not discarded: %+v", stats)
	}
}

func TestSanitizeIXPSplice(t *testing.T) {
	ds := &Dataset{}
	ds.Add(mkPath(10, 555, 30)) // 555 is an IXP route server
	out, stats := Sanitize(ds, SanitizeOptions{IXPASes: map[uint32]bool{555: true}})
	if stats.IXPSpliced != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if !reflect.DeepEqual(out.Paths[0].ASNs, []uint32{10, 30}) {
		t.Errorf("path = %v", out.Paths[0].ASNs)
	}
}

func TestSanitizeTooShort(t *testing.T) {
	ds := &Dataset{}
	ds.Add(mkPath(10))
	ds.Add(mkPath(10, 10)) // collapses to single hop
	out, stats := Sanitize(ds, SanitizeOptions{})
	if stats.TooShort != 2 || out.NumPaths() != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSanitizeDuplicates(t *testing.T) {
	ds := &Dataset{}
	ds.Add(mkPath(10, 20, 30))
	ds.Add(mkPath(10, 20, 30))
	out, stats := Sanitize(ds, SanitizeOptions{})
	if stats.Duplicates != 1 || out.NumPaths() != 1 {
		t.Errorf("dedup failed: %+v", stats)
	}
	out, stats = Sanitize(ds, SanitizeOptions{KeepDuplicates: true})
	if stats.Duplicates != 0 || out.NumPaths() != 2 {
		t.Errorf("KeepDuplicates failed: %+v", stats)
	}
	// Different prefixes are not duplicates.
	ds2 := &Dataset{}
	p1 := mkPath(10, 20, 30)
	p2 := mkPath(10, 20, 30)
	p2.Prefix = netip.MustParsePrefix("198.51.100.0/24")
	ds2.Add(p1)
	ds2.Add(p2)
	out, _ = Sanitize(ds2, SanitizeOptions{})
	if out.NumPaths() != 2 {
		t.Error("different prefixes wrongly deduped")
	}
}

func TestSanitizeIdempotent(t *testing.T) {
	ds := &Dataset{}
	ds.Add(mkPath(10, 20, 20, 30))
	ds.Add(mkPath(11, 30, 40))
	once, _ := Sanitize(ds, SanitizeOptions{})
	twice, stats := Sanitize(once, SanitizeOptions{})
	if !reflect.DeepEqual(once.Paths, twice.Paths) {
		t.Error("sanitize not idempotent")
	}
	if stats.PrependingRemoved != 0 || stats.LoopDiscarded != 0 || stats.Duplicates != 0 {
		t.Errorf("second pass should be clean: %+v", stats)
	}
}

func TestSanitizeInvariantsQuick(t *testing.T) {
	// Property: sanitized paths have no consecutive repeats, no loops,
	// no reserved ASNs.
	f := func(raw [][]uint32) bool {
		ds := &Dataset{}
		for _, asns := range raw {
			// Constrain to plausible small ASNs, with some reserved mixed in.
			path := make([]uint32, 0, len(asns))
			for _, a := range asns {
				path = append(path, a%70000)
			}
			ds.Add(Path{Collector: "q", ASNs: path})
		}
		out, _ := Sanitize(ds, SanitizeOptions{})
		for _, p := range out.Paths {
			seen := map[uint32]bool{}
			for i, a := range p.ASNs {
				if seen[a] {
					return false
				}
				seen[a] = true
				if i > 0 && p.ASNs[i-1] == a {
					return false
				}
				if a == 0 || a == 23456 || (a >= 64496 && a <= 65551) {
					return false
				}
			}
			if len(p.ASNs) < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTextCodecRoundTrip(t *testing.T) {
	ds := buildDataset()
	noPrefix := Path{Collector: "c2", ASNs: []uint32{1, 2}}
	ds.Add(noPrefix)
	var buf bytes.Buffer
	if err := Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Paths, ds.Paths) {
		t.Errorf("round trip:\ngot  %+v\nwant %+v", got.Paths, ds.Paths)
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\nc1|192.0.2.0/24|10 20 30\n"
	ds, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumPaths() != 1 || ds.Paths[0].VP() != 10 {
		t.Errorf("parsed %+v", ds.Paths)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"c1|192.0.2.0/24",             // missing field
		"c1|not-a-prefix|10 20",       // bad prefix
		"c1|192.0.2.0/24|10 x 30",     // bad ASN
		"c1|192.0.2.0/24|99999999999", // ASN overflow
		"c1|192.0.2.0/24|",            // empty path
		"c1|192.0.2.0/24|10 20|extra", // too many fields
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d (%q) should fail", i, c)
		}
	}
}

func TestFromMRT(t *testing.T) {
	ts := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	peers := []mrt.Peer{
		{BGPID: netip.MustParseAddr("10.0.0.1"), Addr: netip.MustParseAddr("203.0.113.1"), ASN: 10},
		{BGPID: netip.MustParseAddr("10.0.0.2"), Addr: netip.MustParseAddr("203.0.113.2"), ASN: 11},
	}
	attrs := func(asns ...uint32) *bgp.PathAttributes {
		return &bgp.PathAttributes{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Sequence(asns...),
			NextHop: netip.MustParseAddr("192.0.2.1"),
		}
	}
	var buf bytes.Buffer
	rw := mrt.NewRIBWriter(&buf, netip.MustParseAddr("198.51.100.1"), "v", peers, ts)
	pfx := netip.MustParsePrefix("192.0.2.0/24")
	if err := rw.WritePrefix(pfx, []mrt.RIBEntry{
		{PeerIndex: 0, Originated: ts, Attrs: attrs(10, 20, 30)},
		{PeerIndex: 1, Originated: ts, Attrs: attrs(20, 30)}, // missing VP hop → prepended
	}); err != nil {
		t.Fatal(err)
	}
	// A path with an AS_SET should be dropped.
	setAttrs := attrs(10, 20)
	setAttrs.ASPath = append(setAttrs.ASPath, bgp.PathSegment{Type: bgp.ASSet, ASNs: []uint32{30, 40}})
	if err := rw.WritePrefix(netip.MustParsePrefix("198.51.100.0/24"), []mrt.RIBEntry{
		{PeerIndex: 0, Originated: ts, Attrs: setAttrs},
	}); err != nil {
		t.Fatal(err)
	}

	ds, stats, err := FromMRT(&buf, "rv-test")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 3 || stats.ASSets != 1 || stats.VPPrepended != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if ds.NumPaths() != 2 {
		t.Fatalf("paths = %d", ds.NumPaths())
	}
	if !reflect.DeepEqual(ds.Paths[0].ASNs, []uint32{10, 20, 30}) {
		t.Errorf("path0 = %v", ds.Paths[0].ASNs)
	}
	if !reflect.DeepEqual(ds.Paths[1].ASNs, []uint32{11, 20, 30}) {
		t.Errorf("path1 (VP-prepended) = %v", ds.Paths[1].ASNs)
	}
	if ds.Paths[0].Collector != "rv-test" || ds.Paths[0].Prefix != pfx {
		t.Errorf("metadata wrong: %+v", ds.Paths[0])
	}
}
