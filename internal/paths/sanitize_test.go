package paths

import (
	"reflect"
	"testing"
)

// TestSanitizeStatsArithmetic pins the bookkeeping fix: every input
// path lands in exactly one of the Kept/discard buckets, and the
// PrependingRemoved / IXPSpliced effect counters describe kept paths
// only — a path discarded as too-short or duplicate after cleaning must
// not inflate them.
func TestSanitizeStatsArithmetic(t *testing.T) {
	ds := &Dataset{}
	ds.Add(mkPath(10, 20, 20, 30))     // kept, prepending compressed
	ds.Add(mkPath(10, 20, 20, 30))     // duplicate of the above: effect not counted
	ds.Add(mkPath(10, 10))             // collapses below 2 hops: prepending not counted
	ds.Add(mkPath(10, 555))            // IXP spliced to 1 hop: splice not counted
	ds.Add(mkPath(10, 555, 30))        // kept, IXP spliced
	ds.Add(mkPath(10, 64512, 30))      // reserved ASN
	ds.Add(mkPath(10, 20, 30, 20, 40)) // loop

	out, stats := Sanitize(ds, SanitizeOptions{IXPASes: map[uint32]bool{555: true}})
	want := SanitizeStats{
		Input:             7,
		Kept:              2,
		PrependingRemoved: 1,
		IXPSpliced:        1,
		ReservedDiscarded: 1,
		LoopDiscarded:     1,
		TooShort:          2,
		Duplicates:        1,
	}
	if stats != want {
		t.Errorf("stats = %+v, want %+v", stats, want)
	}
	if got := stats.Kept + stats.ReservedDiscarded + stats.LoopDiscarded + stats.TooShort + stats.Duplicates; got != stats.Input {
		t.Errorf("buckets sum to %d, want Input = %d", got, stats.Input)
	}
	if out.NumPaths() != stats.Kept {
		t.Errorf("output has %d paths, stats.Kept = %d", out.NumPaths(), stats.Kept)
	}
}

// TestSanitizeParallelDeterministic checks that worker count never
// changes the output dataset or the stats.
func TestSanitizeParallelDeterministic(t *testing.T) {
	ds := &Dataset{}
	// A mix big enough that shards straddle every discard class.
	for i := 0; i < 200; i++ {
		base := uint32(1000 + i)
		ds.Add(mkPath(10, base, base+1, base+2))
		ds.Add(mkPath(10, base, base, base+1)) // prepending
		ds.Add(mkPath(10, base, base+1, base+2))
		if i%5 == 0 {
			ds.Add(mkPath(10, 64512, base)) // reserved
			ds.Add(mkPath(10, base, 20, base, 30))
			ds.Add(mkPath(10, 555, base)) // splices too short
		}
	}
	wantOut, wantStats := Sanitize(ds, SanitizeOptions{IXPASes: map[uint32]bool{555: true}, Workers: 1})
	for _, workers := range []int{2, 7, 32} {
		out, stats := Sanitize(ds, SanitizeOptions{IXPASes: map[uint32]bool{555: true}, Workers: workers})
		if stats != wantStats {
			t.Fatalf("workers=%d: stats = %+v, want %+v", workers, stats, wantStats)
		}
		if !reflect.DeepEqual(out, wantOut) {
			t.Fatalf("workers=%d: output dataset differs from sequential run", workers)
		}
	}
}
