package paths

import (
	"io"

	"github.com/asrank-go/asrank/internal/mrt"
)

// MRTStats counts what FromMRT saw while flattening a RIB snapshot.
type MRTStats struct {
	Entries     int // RIB entries read
	ASSets      int // entries discarded because the path contains AS_SETs
	EmptyPaths  int // entries discarded for empty AS paths
	VPPrepended int // entries whose path lacked the peer AS as first hop
}

// FromMRT flattens a TABLE_DUMP_V2 RIB snapshot into a path dataset.
// Paths with AS_SET segments (aggregated routes) are discarded, matching
// the paper's handling. If a path does not begin with the announcing
// peer's ASN, the peer ASN is prepended so that ASNs[0] is always the VP.
func FromMRT(r io.Reader, collector string) (*Dataset, MRTStats, error) {
	ds := &Dataset{}
	var stats MRTStats
	rr := mrt.NewRIBReader(r)
	for {
		e, err := rr.Next()
		if err == io.EOF {
			return ds, stats, nil
		}
		if err != nil {
			return nil, stats, err
		}
		stats.Entries++
		path := e.RIBEntry.Attrs.Path()
		if path.HasSet() {
			stats.ASSets++
			continue
		}
		asns := path.Flatten()
		if len(asns) == 0 {
			stats.EmptyPaths++
			continue
		}
		if asns[0] != e.Peer.ASN {
			stats.VPPrepended++
			asns = append([]uint32{e.Peer.ASN}, asns...)
		}
		ds.Add(Path{Collector: collector, Prefix: e.Prefix, ASNs: asns})
	}
}
