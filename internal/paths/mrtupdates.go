package paths

import (
	"io"

	"github.com/asrank-go/asrank/internal/mrt"
)

// UpdateStats counts what FromMRTUpdates saw in a BGP4MP trace.
type UpdateStats struct {
	Messages     int // BGP4MP message records
	Updates      int // of which parseable UPDATEs
	Announced    int // prefixes announced
	Withdrawn    int // prefixes withdrawn
	StateChanges int
	ASSets       int // announcements discarded for AS_SET paths
}

// FromMRTUpdates flattens a BGP4MP update trace into a path corpus: the
// latest announcement per (peer, prefix) wins and withdrawals remove
// the route, so the result is the RIB the trace would converge to.
func FromMRTUpdates(r io.Reader, collector string) (*Dataset, UpdateStats, error) {
	var stats UpdateStats
	type key struct {
		peer   uint32
		prefix string
	}
	rib := make(map[key]Path)
	var order []key // first-announcement order for deterministic output

	mr := mrt.NewReader(r)
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, stats, err
		}
		switch body := rec.Body.(type) {
		case *mrt.BGP4MPStateChange:
			stats.StateChanges++
		case *mrt.BGP4MPMessage:
			stats.Messages++
			upd, err := body.Update()
			if err != nil {
				continue // non-UPDATE or unparseable message
			}
			stats.Updates++
			for _, pfx := range upd.Withdrawn {
				stats.Withdrawn++
				delete(rib, key{body.PeerAS, pfx.String()})
			}
			path := upd.Attrs.Path()
			if len(upd.NLRI) == 0 {
				continue
			}
			if path.HasSet() {
				stats.ASSets += len(upd.NLRI)
				continue
			}
			asns := path.Flatten()
			if len(asns) == 0 {
				continue
			}
			if asns[0] != body.PeerAS {
				asns = append([]uint32{body.PeerAS}, asns...)
			}
			for _, pfx := range upd.NLRI {
				stats.Announced++
				k := key{body.PeerAS, pfx.String()}
				if _, seen := rib[k]; !seen {
					order = append(order, k)
				}
				rib[k] = Path{Collector: collector, Prefix: pfx, ASNs: asns}
			}
		}
	}
	ds := &Dataset{}
	for _, k := range order {
		if p, ok := rib[k]; ok {
			ds.Add(p)
		}
	}
	return ds, stats, nil
}
