package paths

import (
	"context"
	"time"

	"github.com/asrank-go/asrank/internal/asn"
	"github.com/asrank-go/asrank/internal/pool"
	"github.com/asrank-go/asrank/internal/trace"
)

// SanitizeOptions controls the sanitization pass.
type SanitizeOptions struct {
	// IXPASes are route-server ASNs to splice out of paths; IXP route
	// servers are not party to the business relationship between the
	// ASes they connect.
	IXPASes map[uint32]bool
	// KeepDuplicates retains byte-identical (collector, prefix, path)
	// duplicates instead of collapsing them.
	KeepDuplicates bool
	// Workers bounds the worker pool that cleans path shards in
	// parallel; <= 0 selects runtime.GOMAXPROCS. Worker count never
	// changes results: per-path cleaning is independent, and the
	// order-dependent bookkeeping (stats, dedup, output order) runs
	// over the cleaned shards in input order.
	Workers int
}

// SanitizeStats counts what the sanitization pass did, feeding the
// input-data summary experiment (R1).
type SanitizeStats struct {
	Input             int // paths in
	Kept              int // paths out
	PrependingRemoved int // paths that had prepending compressed
	IXPSpliced        int // paths that had an IXP ASN removed
	ReservedDiscarded int // paths discarded for reserved/private ASNs
	LoopDiscarded     int // paths discarded for AS loops
	TooShort          int // paths with fewer than 2 hops after cleaning
	Duplicates        int // exact duplicates collapsed
}

// Sanitize applies the paper's step-1 cleaning to ds and returns a new
// dataset: prepending is compressed, IXP route-server ASNs are spliced
// out, and paths containing reserved ASNs or loops are discarded, as are
// (by default) exact duplicates.
//
// Per-path cleaning is sharded across a worker pool (SanitizeOptions.
// Workers); the discard/dedup bookkeeping then walks the cleaned paths
// in input order, so output and stats are identical at any worker count.
// PrependingRemoved and IXPSpliced count kept paths only, preserving
// Input == Kept + ReservedDiscarded + LoopDiscarded + TooShort +
// Duplicates with each kept row attributable to the corpus that
// inference actually sees.
func Sanitize(ds *Dataset, opts SanitizeOptions) (*Dataset, SanitizeStats) {
	return SanitizeCtx(context.Background(), ds, opts)
}

// SanitizeCtx is Sanitize with a context for tracing: when ctx carries
// a span, the pass records a "paths.sanitize" span with per-stage
// children ("paths.sanitize.clean" fans per-shard pool.task spans
// across the worker goroutines; "paths.sanitize.sweep" is the
// sequential bookkeeping walk) and input/kept counts as attributes.
func SanitizeCtx(ctx context.Context, ds *Dataset, opts SanitizeOptions) (*Dataset, SanitizeStats) {
	ctx, span := trace.StartSpan(ctx, "paths.sanitize")
	defer span.End()
	t0 := time.Now()
	stats := SanitizeStats{Input: len(ds.Paths)}
	out := &Dataset{Paths: make([]Path, 0, len(ds.Paths))}
	seen := make(map[string]bool)

	type cleanedPath struct {
		asns []uint32
		info pathInfo
	}
	cleanedPaths := make([]cleanedPath, len(ds.Paths))
	cleanCtx, cleanSpan := trace.StartSpan(ctx, "paths.sanitize.clean")
	pool.RangeCtx(cleanCtx, opts.Workers, len(ds.Paths), func(_ context.Context, _, lo, hi int) {
		for i := lo; i < hi; i++ {
			asns, info := sanitizePath(ds.Paths[i].ASNs, opts.IXPASes)
			cleanedPaths[i] = cleanedPath{asns: asns, info: info}
		}
	})
	cleanSpan.End()

	_, sweepSpan := trace.StartSpan(ctx, "paths.sanitize.sweep")
	for i, p := range ds.Paths {
		cleaned, info := cleanedPaths[i].asns, cleanedPaths[i].info
		switch info {
		case pathReserved:
			stats.ReservedDiscarded++
			continue
		case pathLoop:
			stats.LoopDiscarded++
			continue
		}
		if len(cleaned) < 2 {
			stats.TooShort++
			continue
		}
		np := Path{Collector: p.Collector, Prefix: p.Prefix, ASNs: cleaned}
		if !opts.KeepDuplicates {
			key := dupKey(np)
			if seen[key] {
				stats.Duplicates++
				continue
			}
			seen[key] = true
		}
		if info&pathPrepended != 0 {
			stats.PrependingRemoved++
		}
		if info&pathIXP != 0 {
			stats.IXPSpliced++
		}
		out.Add(np)
	}
	sweepSpan.End()
	stats.Kept = len(out.Paths)
	if span != nil {
		span.SetAttrInt("input", int64(stats.Input))
		span.SetAttrInt("kept", int64(stats.Kept))
		span.SetAttrInt("duplicates", int64(stats.Duplicates))
	}
	stats.record(time.Since(t0))
	return out, stats
}

// SanitizeOne applies the per-path half of the step-1 cleaning to a
// single AS path: prepending compressed, IXP route-server ASNs spliced
// out, reserved-ASN and loop paths discarded, too-short results
// discarded. It returns the cleaned hops and whether the path survives
// — exactly the keep/clean decision Sanitize makes for each input row,
// minus the corpus-level duplicate collapse (a streaming consumer
// reference-counts distinct cleaned paths itself). The returned slice
// is freshly allocated.
func SanitizeOne(asns []uint32, ixp map[uint32]bool) ([]uint32, bool) {
	cleaned, info := sanitizePath(asns, ixp)
	if info < 0 || len(cleaned) < 2 {
		return nil, false
	}
	return cleaned, true
}

// flags describing what sanitizePath observed; the two discard reasons
// are exclusive sentinel values.
type pathInfo int

const (
	pathPrepended pathInfo = 1 << iota
	pathIXP

	pathReserved pathInfo = -1
	pathLoop     pathInfo = -2
)

// sanitizePath compresses prepending, splices IXP ASNs, and classifies
// the path. It returns nil and a sentinel for discarded paths.
func sanitizePath(asns []uint32, ixp map[uint32]bool) ([]uint32, pathInfo) {
	var info pathInfo
	cleaned := make([]uint32, 0, len(asns))
	for _, a := range asns {
		if ixp[a] {
			info |= pathIXP
			continue
		}
		if asn.IsReserved(a) {
			return nil, pathReserved
		}
		if n := len(cleaned); n > 0 && cleaned[n-1] == a {
			info |= pathPrepended
			continue
		}
		cleaned = append(cleaned, a)
	}
	// After compression any repeat is a loop.
	seen := make(map[uint32]bool, len(cleaned))
	for _, a := range cleaned {
		if seen[a] {
			return nil, pathLoop
		}
		seen[a] = true
	}
	return cleaned, info
}

func dupKey(p Path) string {
	// Collector and prefix disambiguate; ASNs appended as raw bytes.
	b := make([]byte, 0, len(p.Collector)+20+len(p.ASNs)*4)
	b = append(b, p.Collector...)
	b = append(b, 0)
	b = append(b, p.Prefix.String()...)
	b = append(b, 0)
	for _, a := range p.ASNs {
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return string(b)
}
