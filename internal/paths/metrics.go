package paths

import (
	"time"

	"github.com/asrank-go/asrank/internal/obs"
)

// Sanitization metrics, recorded into the process-global registry on
// every Sanitize call. Drop reasons mirror the SanitizeStats fields so
// the /metrics surface and the R1 experiment table agree.
var (
	sanDuration = obs.Default().Histogram("asrank_sanitize_duration_seconds",
		"Wall time of one Sanitize pass over a path corpus.", obs.DurationBuckets)
	sanInput = obs.Default().Counter("asrank_sanitize_paths_input_total",
		"Paths fed into sanitization.")
	sanKept = obs.Default().Counter("asrank_sanitize_paths_kept_total",
		"Paths surviving sanitization.")
	sanDropped = obs.Default().CounterVec("asrank_sanitize_paths_dropped_total",
		"Paths discarded by sanitization, by filter.", "reason")
	sanRewritten = obs.Default().CounterVec("asrank_sanitize_paths_rewritten_total",
		"Kept paths rewritten by sanitization, by change.", "change")
)

// record publishes one pass's stats.
func (st SanitizeStats) record(elapsed time.Duration) {
	sanDuration.Observe(elapsed.Seconds())
	sanInput.Add(uint64(st.Input))
	sanKept.Add(uint64(st.Kept))
	sanDropped.With("reserved").Add(uint64(st.ReservedDiscarded))
	sanDropped.With("loop").Add(uint64(st.LoopDiscarded))
	sanDropped.With("too_short").Add(uint64(st.TooShort))
	sanDropped.With("duplicate").Add(uint64(st.Duplicates))
	sanRewritten.With("prepending").Add(uint64(st.PrependingRemoved))
	sanRewritten.With("ixp").Add(uint64(st.IXPSpliced))
}
