package paths

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
)

// The text interchange format is one path per line:
//
//	collector|prefix|asn asn asn ...
//
// Lines starting with '#' and blank lines are ignored. The format is a
// cousin of the "|"-separated dumps BGP tooling commonly emits.

// Write renders the dataset in the text format.
func Write(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, p := range ds.Paths {
		bw.WriteString(p.Collector)
		bw.WriteByte('|')
		if p.Prefix.IsValid() {
			bw.WriteString(p.Prefix.String())
		}
		bw.WriteByte('|')
		for i, a := range p.ASNs {
			if i > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(strconv.FormatUint(uint64(a), 10))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format.
func Read(r io.Reader) (*Dataset, error) {
	ds := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("paths: line %d: want 3 |-separated fields, got %d", lineno, len(parts))
		}
		p := Path{Collector: parts[0]}
		if parts[1] != "" {
			prefix, err := netip.ParsePrefix(parts[1])
			if err != nil {
				return nil, fmt.Errorf("paths: line %d: %w", lineno, err)
			}
			p.Prefix = prefix
		}
		for _, f := range strings.Fields(parts[2]) {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("paths: line %d: bad ASN %q", lineno, f)
			}
			p.ASNs = append(p.ASNs, uint32(v))
		}
		if len(p.ASNs) == 0 {
			return nil, fmt.Errorf("paths: line %d: empty AS path", lineno)
		}
		ds.Add(p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}
