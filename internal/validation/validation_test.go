package validation

import (
	"bytes"
	"testing"
	"time"

	"github.com/asrank-go/asrank/internal/bgp"
	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/rpsl"
	"github.com/asrank-go/asrank/internal/topology"
)

func link(a, b uint32) paths.Link { return paths.NewLink(a, b) }

func TestCorpusAddAndConflicts(t *testing.T) {
	c := NewCorpus()
	c.Add(link(1, 2), topology.P2C, SourceReported)
	c.Add(link(1, 2), topology.P2C, SourceRPSL) // agreement: sources merge
	c.Add(link(3, 4), topology.P2P, SourceCommunities)
	c.Add(link(3, 4), topology.P2C, SourceRPSL)     // conflict: dropped
	c.Add(link(3, 4), topology.P2P, SourceReported) // after conflict: ignored

	if c.Len() != 1 || c.Conflicts() != 1 {
		t.Fatalf("len=%d conflicts=%d", c.Len(), c.Conflicts())
	}
	e := c.Entries()[link(1, 2)]
	if e.Rel != topology.P2C || e.Sources != SourceReported|SourceRPSL {
		t.Errorf("entry = %+v", e)
	}
}

func TestCorpusStats(t *testing.T) {
	c := NewCorpus()
	c.Add(link(1, 2), topology.P2C, SourceReported)
	c.Add(link(1, 2), topology.P2C, SourceRPSL)
	c.Add(link(5, 6), topology.P2P, SourceCommunities)
	st := c.Stats()
	if st.Total != 2 || st.MultiSrc != 1 || st.C2P != 1 || st.P2P != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BySource[SourceReported] != 1 || st.BySource[SourceRPSL] != 1 || st.BySource[SourceCommunities] != 1 {
		t.Errorf("by source = %v", st.BySource)
	}
}

func TestSourceString(t *testing.T) {
	if (SourceReported | SourceRPSL).String() != "reported+rpsl" {
		t.Errorf("got %q", (SourceReported | SourceRPSL).String())
	}
	if Source(0).String() != "none" {
		t.Error("zero source should be none")
	}
}

func TestReportedSampling(t *testing.T) {
	p := topology.DefaultParams(44)
	p.ASes = 300
	topo := topology.Generate(p)
	clean := Reported(topo, 0.3, 0, 44)
	if len(clean) == 0 {
		t.Fatal("no reported data")
	}
	truth := topo.Links()
	for l, r := range clean {
		if truth[l] != r {
			t.Fatalf("noise-free reported data mismatches truth at %v", l)
		}
	}
	noisy := Reported(topo, 0.5, 0.2, 44)
	wrong := 0
	for l, r := range noisy {
		if truth[l] != r {
			wrong++
		}
	}
	if wrong == 0 {
		t.Error("expected some noisy entries")
	}
	// Determinism.
	again := Reported(topo, 0.5, 0.2, 44)
	if len(again) != len(noisy) {
		t.Error("sampling not deterministic")
	}
}

func TestFromPathCommunities(t *testing.T) {
	path := []uint32{10, 20, 30, 40}
	comms := []bgp.Community{
		bgp.NewCommunity(20, bgpsim.CommunityFromPeer),     // 20~30
		bgp.NewCommunity(30, bgpsim.CommunityFromCustomer), // 30>40
		bgp.NewCommunity(99, bgpsim.CommunityFromPeer),     // AS not on path: ignored
		bgp.NewCommunity(40, bgpsim.CommunityFromPeer),     // origin: no next hop
		bgp.NewCommunity(10, 999),                          // unknown code: ignored
	}
	rels := FromPathCommunities(path, comms)
	if len(rels) != 2 {
		t.Fatalf("rels = %v", rels)
	}
	if rels[link(20, 30)] != topology.P2P {
		t.Errorf("20-30 = %v", rels[link(20, 30)])
	}
	r := rels[link(30, 40)]
	want := topology.P2C
	if link(30, 40).A != 30 {
		want = want.Invert()
	}
	if r != want {
		t.Errorf("30-40 = %v want %v", r, want)
	}
	if FromPathCommunities(path, nil) != nil {
		t.Error("no communities should yield nil")
	}
}

func TestFromCommunitiesMRTEndToEnd(t *testing.T) {
	p := topology.DefaultParams(45)
	p.ASes = 300
	topo := topology.Generate(p)
	opts := bgpsim.DefaultOptions(45)
	opts.NumVPs = 10
	opts.CommunityDocFrac = 0.5
	opts.PrependRate, opts.PoisonRate, opts.PrivateLeakRate = 0, 0, 0
	res, err := bgpsim.Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bgpsim.ExportMRT(&buf, res, time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	rels, err := FromCommunitiesMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatal("no community relationships extracted")
	}
	// Communities are attached from ground truth, so extraction must
	// match the topology exactly.
	truth := topo.Links()
	for l, r := range rels {
		if truth[l] != r {
			t.Fatalf("link %v: community says %v, truth %v", l, r, truth[l])
		}
	}
}

func TestEvaluate(t *testing.T) {
	inferred := map[paths.Link]topology.Relationship{
		link(1, 2): topology.P2C,
		link(3, 4): topology.P2P,
		link(5, 6): topology.P2C,
		link(7, 8): topology.C2P,
	}
	truth := map[paths.Link]topology.Relationship{
		link(1, 2): topology.P2C, // correct c2p
		link(3, 4): topology.P2C, // wrong p2p
		link(5, 6): topology.P2P, // wrong c2p
		// 7-8 unvalidated
	}
	m := Evaluate(inferred, truth)
	if m.C2PTotal != 2 || m.C2PCorrect != 1 {
		t.Errorf("c2p: %d/%d", m.C2PCorrect, m.C2PTotal)
	}
	if m.P2PTotal != 1 || m.P2PCorrect != 0 {
		t.Errorf("p2p: %d/%d", m.P2PCorrect, m.P2PTotal)
	}
	if m.Coverage != 0.75 {
		t.Errorf("coverage = %v", m.Coverage)
	}
	if m.C2PPPV() != 0.5 || m.P2PPPV() != 0 {
		t.Errorf("ppvs: %v %v", m.C2PPPV(), m.P2PPPV())
	}
	if m.Overall() != 1.0/3 {
		t.Errorf("overall = %v", m.Overall())
	}
	var zero Metrics
	if zero.C2PPPV() != 0 || zero.P2PPPV() != 0 || zero.Overall() != 0 {
		t.Error("zero metrics should yield 0 PPVs")
	}
}

// TestFullValidationPipeline mirrors the paper's validation workflow:
// infer from paths, assemble a three-source corpus, and check PPV.
func TestFullValidationPipeline(t *testing.T) {
	p := topology.DefaultParams(46)
	p.ASes = 600
	topo := topology.Generate(p)
	opts := bgpsim.DefaultOptions(46)
	opts.NumVPs = 20
	sim, err := bgpsim.Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Corpus: reported (8%, 1% noise), RPSL (30% registered), communities.
	corpus := NewCorpus()
	corpus.AddAll(Reported(topo, 0.08, 0.01, 46), SourceReported)
	autnums, err := rpsl.AutNums(rpsl.Generate(topo, rpsl.GenerateOptions{Seed: 46, RegisterFrac: 0.3, StaleFrac: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	corpus.AddAll(rpsl.Relationships(autnums), SourceRPSL)
	var buf bytes.Buffer
	if err := bgpsim.ExportMRT(&buf, sim, time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	comm, err := FromCommunitiesMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	corpus.AddAll(comm, SourceCommunities)

	if corpus.Len() == 0 {
		t.Fatal("empty corpus")
	}

	clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
	res := core.Infer(clean, core.Options{})
	m := EvaluateCorpus(res.Rels, corpus)
	if m.C2PTotal == 0 || m.P2PTotal == 0 {
		t.Fatalf("metrics empty: %+v", m)
	}
	if ppv := m.C2PPPV(); ppv < 0.9 {
		t.Errorf("validated c2p PPV = %.3f", ppv)
	}
	t.Logf("corpus %d links (%d conflicts); c2p %.4f p2p %.4f coverage %.3f",
		corpus.Len(), corpus.Conflicts(), m.C2PPPV(), m.P2PPPV(), m.Coverage)

	// Per-step metrics cover every inferred link.
	steps := StepMetrics(res, truthOf(corpus))
	total := 0
	for _, sm := range steps {
		total += sm.C2PTotal + sm.P2PTotal
	}
	if total != m.C2PTotal+m.P2PTotal {
		t.Errorf("per-step totals %d != overall %d", total, m.C2PTotal+m.P2PTotal)
	}
	if len(OrderedSteps(steps)) != len(steps) {
		t.Error("OrderedSteps lost a step")
	}
}

func truthOf(c *Corpus) map[paths.Link]topology.Relationship {
	out := make(map[paths.Link]topology.Relationship, c.Len())
	for l, e := range c.Entries() {
		out[l] = e.Rel
	}
	return out
}
