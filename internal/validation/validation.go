// Package validation assembles relationship ground-truth corpora from
// the paper's three sources — operator-reported relationships, RPSL
// routing policy, and relationship-encoding BGP communities — and
// scores inferences against them (PPV per relationship type, per
// source, and per pipeline step).
package validation

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/asrank-go/asrank/internal/bgp"
	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/mrt"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/stats"
	"github.com/asrank-go/asrank/internal/topology"
)

// Source identifies where a validation datum came from.
type Source uint8

// Validation sources.
const (
	SourceReported Source = 1 << iota
	SourceRPSL
	SourceCommunities
)

// String names the source mask.
func (s Source) String() string {
	var parts []string
	if s&SourceReported != 0 {
		parts = append(parts, "reported")
	}
	if s&SourceRPSL != 0 {
		parts = append(parts, "rpsl")
	}
	if s&SourceCommunities != 0 {
		parts = append(parts, "communities")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Entry is one validated link.
type Entry struct {
	Rel     topology.Relationship // canonical orientation (Link.A vs Link.B)
	Sources Source
}

// Corpus accumulates validation data, tracking cross-source agreement.
type Corpus struct {
	entries   map[paths.Link]Entry
	conflicts map[paths.Link]bool
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{
		entries:   make(map[paths.Link]Entry),
		conflicts: make(map[paths.Link]bool),
	}
}

// Add inserts one validated relationship (canonical orientation). When
// sources disagree about a link, the link is dropped from the corpus —
// the paper discards conflicted validation data.
func (c *Corpus) Add(l paths.Link, rel topology.Relationship, src Source) {
	if c.conflicts[l] {
		return
	}
	e, ok := c.entries[l]
	if !ok {
		c.entries[l] = Entry{Rel: rel, Sources: src}
		return
	}
	if e.Rel != rel {
		c.conflicts[l] = true
		delete(c.entries, l)
		return
	}
	e.Sources |= src
	c.entries[l] = e
}

// AddAll inserts a whole relationship map from one source.
func (c *Corpus) AddAll(rels map[paths.Link]topology.Relationship, src Source) {
	for l, r := range rels {
		c.Add(l, r, src)
	}
}

// Entries returns the corpus content (excluding conflicted links).
func (c *Corpus) Entries() map[paths.Link]Entry {
	out := make(map[paths.Link]Entry, len(c.entries))
	for l, e := range c.entries {
		out[l] = e
	}
	return out
}

// Len returns the number of validated links.
func (c *Corpus) Len() int { return len(c.entries) }

// Conflicts returns how many links were dropped for cross-source
// disagreement.
func (c *Corpus) Conflicts() int { return len(c.conflicts) }

// CorpusStats summarizes corpus composition for the validation-data
// table (R4).
type CorpusStats struct {
	Total     int
	BySource  map[Source]int // links carrying each single source bit
	MultiSrc  int            // links confirmed by 2+ sources
	Conflicts int
	C2P, P2P  int
}

// Stats computes corpus composition counts.
func (c *Corpus) Stats() CorpusStats {
	st := CorpusStats{
		Total:     len(c.entries),
		BySource:  map[Source]int{},
		Conflicts: len(c.conflicts),
	}
	for _, e := range c.entries {
		for _, s := range []Source{SourceReported, SourceRPSL, SourceCommunities} {
			if e.Sources&s != 0 {
				st.BySource[s]++
			}
		}
		if e.Sources&(e.Sources-1) != 0 {
			st.MultiSrc++
		}
		if e.Rel == topology.P2P {
			st.P2P++
		} else {
			st.C2P++
		}
	}
	return st
}

// Reported samples the paper's first source: relationships operators
// reported directly. frac of the topology's links are sampled; noiseFrac
// of those are mislabeled (operators misreport occasionally).
func Reported(topo *topology.Topology, frac, noiseFrac float64, seed int64) map[paths.Link]topology.Relationship {
	rng := stats.NewRNG(seed)
	out := make(map[paths.Link]topology.Relationship)
	links := topo.Links()
	ordered := paths.SortedLinks(countsOf(links))
	for _, l := range ordered {
		if !rng.Bool(frac) {
			continue
		}
		rel := links[l]
		if rng.Bool(noiseFrac) {
			// Misreport: flip c2p<->p2p.
			if rel == topology.P2P {
				rel = topology.P2C
			} else {
				rel = topology.P2P
			}
		}
		out[l] = rel
	}
	return out
}

func countsOf(m map[paths.Link]topology.Relationship) map[paths.Link]int {
	out := make(map[paths.Link]int, len(m))
	for l := range m {
		out[l] = 1
	}
	return out
}

// FromPathCommunities extracts relationships encoded in a path's
// communities: community X:code means AS X learned this route over the
// link to the AS that follows X in the path, with code identifying the
// ingress relationship (see bgpsim community codes).
func FromPathCommunities(path []uint32, comms []bgp.Community) map[paths.Link]topology.Relationship {
	if len(comms) == 0 || len(path) < 2 {
		return nil
	}
	pos := make(map[uint32]int, len(path))
	for i, a := range path {
		pos[a] = i
	}
	out := make(map[paths.Link]topology.Relationship)
	for _, c := range comms {
		x := uint32(c.ASN())
		i, ok := pos[x]
		if !ok || i+1 >= len(path) {
			continue
		}
		next := path[i+1]
		var relXtoNext topology.Relationship
		switch c.Value() {
		case bgpsim.CommunityFromCustomer:
			relXtoNext = topology.P2C
		case bgpsim.CommunityFromPeer:
			relXtoNext = topology.P2P
		case bgpsim.CommunityFromProvider:
			relXtoNext = topology.C2P
		default:
			continue
		}
		l := paths.NewLink(x, next)
		if l.A != x {
			relXtoNext = relXtoNext.Invert()
		}
		out[l] = relXtoNext
	}
	return out
}

// FromCommunitiesMRT scans a TABLE_DUMP_V2 RIB snapshot and extracts
// every community-encoded relationship, dropping links whose community
// evidence is self-contradictory.
func FromCommunitiesMRT(r io.Reader) (map[paths.Link]topology.Relationship, error) {
	votes := make(map[paths.Link]map[topology.Relationship]bool)
	rr := mrt.NewRIBReader(r)
	for {
		e, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("validation: reading RIB: %w", err)
		}
		attrs := e.RIBEntry.Attrs
		path := attrs.Path().Flatten()
		for l, rel := range FromPathCommunities(path, attrs.Communities) {
			m, ok := votes[l]
			if !ok {
				m = make(map[topology.Relationship]bool, 1)
				votes[l] = m
			}
			m[rel] = true
		}
	}
	out := make(map[paths.Link]topology.Relationship, len(votes))
	for l, m := range votes {
		if len(m) == 1 {
			for rel := range m {
				out[l] = rel
			}
		}
	}
	return out, nil
}

// Metrics scores an inference against validation data.
type Metrics struct {
	C2PTotal, C2PCorrect int
	P2PTotal, P2PCorrect int
	// Coverage is the fraction of inferred links that had validation
	// data.
	Coverage float64
}

// C2PPPV returns the positive predictive value of c2p inferences.
func (m Metrics) C2PPPV() float64 {
	if m.C2PTotal == 0 {
		return 0
	}
	return float64(m.C2PCorrect) / float64(m.C2PTotal)
}

// P2PPPV returns the positive predictive value of p2p inferences.
func (m Metrics) P2PPPV() float64 {
	if m.P2PTotal == 0 {
		return 0
	}
	return float64(m.P2PCorrect) / float64(m.P2PTotal)
}

// Overall returns the PPV across both relationship types.
func (m Metrics) Overall() float64 {
	total := m.C2PTotal + m.P2PTotal
	if total == 0 {
		return 0
	}
	return float64(m.C2PCorrect+m.P2PCorrect) / float64(total)
}

// Evaluate scores inferred relationships against truth (both in
// canonical orientation).
func Evaluate(inferred, truth map[paths.Link]topology.Relationship) Metrics {
	var m Metrics
	validated := 0
	for l, rel := range inferred {
		want, ok := truth[l]
		if !ok {
			continue
		}
		validated++
		if rel == topology.P2P {
			m.P2PTotal++
			if want == topology.P2P {
				m.P2PCorrect++
			}
		} else {
			m.C2PTotal++
			if want == rel {
				m.C2PCorrect++
			}
		}
	}
	if len(inferred) > 0 {
		m.Coverage = float64(validated) / float64(len(inferred))
	}
	return m
}

// EvaluateCorpus scores an inference against a corpus.
func EvaluateCorpus(inferred map[paths.Link]topology.Relationship, c *Corpus) Metrics {
	truth := make(map[paths.Link]topology.Relationship, c.Len())
	for l, e := range c.Entries() {
		truth[l] = e.Rel
	}
	return Evaluate(inferred, truth)
}

// StepMetrics scores each pipeline step separately (the per-step PPV
// table in R5).
func StepMetrics(res *core.Result, truth map[paths.Link]topology.Relationship) map[core.Step]Metrics {
	byStep := map[core.Step]map[paths.Link]topology.Relationship{}
	for l, rel := range res.Rels {
		s := res.Steps[l]
		m, ok := byStep[s]
		if !ok {
			m = make(map[paths.Link]topology.Relationship)
			byStep[s] = m
		}
		m[l] = rel
	}
	out := make(map[core.Step]Metrics, len(byStep))
	for s, rels := range byStep {
		out[s] = Evaluate(rels, truth)
	}
	return out
}

// OrderedSteps returns the steps present in a StepMetrics map in
// pipeline order.
func OrderedSteps(m map[core.Step]Metrics) []core.Step {
	var out []core.Step
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
