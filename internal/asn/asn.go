// Package asn provides utilities for working with Autonomous System
// numbers: classification of reserved, private and documentation ranges,
// and conversion between asplain and asdot notations (RFC 5396).
//
// AS numbers are represented as plain uint32 throughout this module; the
// 2-byte/4-byte distinction only matters on the wire (see internal/bgp).
package asn

import (
	"fmt"
	"strconv"
	"strings"
)

// Well-known AS numbers and range boundaries (IANA registry, RFC 1930,
// RFC 5398, RFC 6996, RFC 7300).
const (
	// Trans is AS_TRANS (RFC 6793): substituted for 4-byte ASNs when
	// speaking to 2-byte-only BGP peers.
	Trans = 23456

	// Doc16First..Doc16Last is the 16-bit documentation range (RFC 5398).
	Doc16First = 64496
	Doc16Last  = 64511

	// Private16First..Private16Last is the 16-bit private-use range
	// (RFC 6996).
	Private16First = 64512
	Private16Last  = 65534

	// Last16 is 65535, reserved by RFC 7300.
	Last16 = 65535

	// Doc32First..Doc32Last is the 32-bit documentation range (RFC 5398).
	Doc32First = 65536
	Doc32Last  = 65551

	// Private32First..Private32Last is the 32-bit private-use range
	// (RFC 6996).
	Private32First = 4200000000
	Private32Last  = 4294967294

	// Last32 is 4294967295, reserved by RFC 7300.
	Last32 = 4294967295
)

// IsPrivate reports whether a is in one of the private-use ranges
// (RFC 6996).
func IsPrivate(a uint32) bool {
	return (a >= Private16First && a <= Private16Last) ||
		(a >= Private32First && a <= Private32Last)
}

// IsDocumentation reports whether a is in one of the documentation ranges
// (RFC 5398).
func IsDocumentation(a uint32) bool {
	return (a >= Doc16First && a <= Doc16Last) ||
		(a >= Doc32First && a <= Doc32Last)
}

// IsReserved reports whether a must not appear as a routable AS in a
// public AS path: AS0, AS_TRANS, documentation, private use, and the
// RFC 7300 last ASNs. Paths containing reserved ASNs are discarded during
// sanitization.
func IsReserved(a uint32) bool {
	switch {
	case a == 0:
		return true
	case a == Trans:
		return true
	case a == Last16 || a == Last32:
		return true
	}
	return IsPrivate(a) || IsDocumentation(a)
}

// IsPublic reports whether a is a plausibly assignable public ASN.
func IsPublic(a uint32) bool { return !IsReserved(a) }

// Is4Byte reports whether a requires 4-byte ASN support on the wire.
func Is4Byte(a uint32) bool { return a > Last16 }

// FormatASDot renders a in asdot notation (RFC 5396): 4-byte ASNs are
// written high.low, 2-byte ASNs as plain decimal.
func FormatASDot(a uint32) string {
	if a <= Last16 {
		return strconv.FormatUint(uint64(a), 10)
	}
	return strconv.FormatUint(uint64(a>>16), 10) + "." +
		strconv.FormatUint(uint64(a&0xffff), 10)
}

// Parse parses an AS number in either asplain ("65550") or asdot ("1.14")
// notation, with an optional "AS" prefix in any case ("AS174", "as1.14").
func Parse(s string) (uint32, error) {
	orig := s
	if len(s) >= 2 && (s[0] == 'A' || s[0] == 'a') && (s[1] == 'S' || s[1] == 's') {
		s = s[2:]
	}
	if s == "" {
		return 0, fmt.Errorf("asn: empty AS number %q", orig)
	}
	if hi, lo, ok := strings.Cut(s, "."); ok {
		h, err := strconv.ParseUint(hi, 10, 16)
		if err != nil {
			return 0, fmt.Errorf("asn: bad asdot high part in %q: %w", orig, err)
		}
		l, err := strconv.ParseUint(lo, 10, 16)
		if err != nil {
			return 0, fmt.Errorf("asn: bad asdot low part in %q: %w", orig, err)
		}
		return uint32(h)<<16 | uint32(l), nil
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("asn: bad AS number %q: %w", orig, err)
	}
	return uint32(v), nil
}
