package asn

import (
	"testing"
	"testing/quick"
)

func TestIsReserved(t *testing.T) {
	tests := []struct {
		a    uint32
		want bool
	}{
		{0, true},
		{1, false},
		{174, false},
		{3356, false},
		{Trans, true},
		{23455, false},
		{23457, false},
		{Doc16First, true},
		{Doc16Last, true},
		{Doc16First - 1, false},
		{Private16First, true},
		{Private16Last, true},
		{Last16, true},
		{Doc32First, true},
		{Doc32Last, true},
		{Doc32Last + 1, false},
		{Private32First, true},
		{Private32First - 1, false},
		{Private32Last, true},
		{Last32, true},
		{394977, false},
	}
	for _, tt := range tests {
		if got := IsReserved(tt.a); got != tt.want {
			t.Errorf("IsReserved(%d) = %v, want %v", tt.a, got, tt.want)
		}
		if got := IsPublic(tt.a); got != !tt.want {
			t.Errorf("IsPublic(%d) = %v, want %v", tt.a, got, !tt.want)
		}
	}
}

func TestIsPrivate(t *testing.T) {
	for _, a := range []uint32{Private16First, Private16Last, Private32First, Private32Last} {
		if !IsPrivate(a) {
			t.Errorf("IsPrivate(%d) = false, want true", a)
		}
	}
	for _, a := range []uint32{1, Last16, Doc16First, Private32First - 1} {
		if IsPrivate(a) {
			t.Errorf("IsPrivate(%d) = true, want false", a)
		}
	}
}

func TestIsDocumentation(t *testing.T) {
	for _, a := range []uint32{Doc16First, Doc16Last, Doc32First, Doc32Last} {
		if !IsDocumentation(a) {
			t.Errorf("IsDocumentation(%d) = false, want true", a)
		}
	}
	if IsDocumentation(1) || IsDocumentation(Private16First) {
		t.Error("IsDocumentation misclassified a non-documentation ASN")
	}
}

func TestIs4Byte(t *testing.T) {
	if Is4Byte(65535) {
		t.Error("Is4Byte(65535) = true, want false")
	}
	if !Is4Byte(65536) {
		t.Error("Is4Byte(65536) = false, want true")
	}
}

func TestFormatASDot(t *testing.T) {
	tests := []struct {
		a    uint32
		want string
	}{
		{0, "0"},
		{174, "174"},
		{65535, "65535"},
		{65536, "1.0"},
		{65550, "1.14"},
		{4294967295, "65535.65535"},
	}
	for _, tt := range tests {
		if got := FormatASDot(tt.a); got != tt.want {
			t.Errorf("FormatASDot(%d) = %q, want %q", tt.a, got, tt.want)
		}
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		in      string
		want    uint32
		wantErr bool
	}{
		{"174", 174, false},
		{"AS174", 174, false},
		{"as174", 174, false},
		{"aS174", 174, false},
		{"1.14", 65550, false},
		{"AS1.14", 65550, false},
		{"65535.65535", 4294967295, false},
		{"4294967295", 4294967295, false},
		{"4294967296", 0, true},
		{"65536.0", 0, true},
		{"0.65536", 0, true},
		{"", 0, true},
		{"AS", 0, true},
		{"abc", 0, true},
		{"1.2.3", 0, true},
		{"-1", 0, true},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("Parse(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("Parse(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		got, err := Parse(FormatASDot(a))
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
