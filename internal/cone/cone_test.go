package cone

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/topology"
)

// rels builds a relationship map from (provider, customer) and peer
// pairs.
func rels(p2c [][2]uint32, p2p [][2]uint32) map[paths.Link]topology.Relationship {
	out := map[paths.Link]topology.Relationship{}
	for _, pc := range p2c {
		l := paths.NewLink(pc[0], pc[1])
		if l.A == pc[0] {
			out[l] = topology.P2C
		} else {
			out[l] = topology.C2P
		}
	}
	for _, pp := range p2p {
		out[paths.NewLink(pp[0], pp[1])] = topology.P2P
	}
	return out
}

// hierarchy: 1 > 3 > 5, 1 > 4, 2 > 4 (multihomed), 1 ~ 2, 3 ~ 4.
func hierarchy() *Relations {
	return NewRelations(rels(
		[][2]uint32{{1, 3}, {3, 5}, {1, 4}, {2, 4}},
		[][2]uint32{{1, 2}, {3, 4}},
	))
}

func set(asns ...uint32) map[uint32]bool {
	m := map[uint32]bool{}
	for _, a := range asns {
		m[a] = true
	}
	return m
}

func TestRecursive(t *testing.T) {
	r := hierarchy()
	cones := r.Recursive()
	if !reflect.DeepEqual(cones[1], set(1, 3, 4, 5)) {
		t.Errorf("cone(1) = %v", cones[1])
	}
	if !reflect.DeepEqual(cones[2], set(2, 4)) {
		t.Errorf("cone(2) = %v", cones[2])
	}
	if !reflect.DeepEqual(cones[3], set(3, 5)) {
		t.Errorf("cone(3) = %v", cones[3])
	}
	if !reflect.DeepEqual(cones[5], set(5)) {
		t.Errorf("cone(5) = %v", cones[5])
	}
	if !reflect.DeepEqual(r.RecursiveOne(1), cones[1]) {
		t.Error("RecursiveOne mismatch")
	}
}

func dsOf(pathList ...[]uint32) *paths.Dataset {
	d := &paths.Dataset{}
	for i, p := range pathList {
		d.Add(paths.Path{
			Collector: "t",
			Prefix:    netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, byte(i), 0}), 24),
			ASNs:      p,
		})
	}
	return d
}

func TestBGPObserved(t *testing.T) {
	r := hierarchy()
	// Path 2~1>3>5: from 1 the descending chain reaches 3 and 5; from 3
	// it reaches 5.
	ds := dsOf([]uint32{2, 1, 3, 5})
	cones := r.BGPObserved(ds)
	if !reflect.DeepEqual(cones[1], set(1, 3, 5)) {
		t.Errorf("BGP cone(1) = %v", cones[1])
	}
	if !reflect.DeepEqual(cones[3], set(3, 5)) {
		t.Errorf("BGP cone(3) = %v", cones[3])
	}
	// 4 was never observed with a customer: self cone only.
	if !reflect.DeepEqual(cones[4], set(4)) {
		t.Errorf("BGP cone(4) = %v", cones[4])
	}
	// 1's link to 4 was not observed: 4 not in 1's BGP cone.
	if cones[1][4] {
		t.Error("unobserved customer 4 in BGP cone(1)")
	}
}

func TestBGPObservedChainStopsAtNonCustomer(t *testing.T) {
	r := hierarchy()
	// Path 5<3~4: hop 3→4 is peer, so 3's chain does not extend to 4...
	// and hop 5→3 is c2p (5 is the customer), so 5 has no chain at all.
	ds := dsOf([]uint32{5, 3, 4})
	cones := r.BGPObserved(ds)
	if len(cones[5]) != 1 {
		t.Errorf("cone(5) = %v", cones[5])
	}
	if cones[3][4] {
		t.Error("peer 4 leaked into 3's cone")
	}
}

func TestProviderPeerObserved(t *testing.T) {
	r := hierarchy()
	ds := dsOf(
		[]uint32{2, 1, 3, 5}, // enters 1 from peer 2: chain 3,5 credited to 1; enters 3 from provider 1: 5 credited to 3
		[]uint32{5, 3, 4},    // 5 is a VP: no entry; 3 entered from customer 5: nothing credited
	)
	cones := r.ProviderPeerObserved(ds)
	if !reflect.DeepEqual(cones[1], set(1, 3, 5)) {
		t.Errorf("PP cone(1) = %v", cones[1])
	}
	if !reflect.DeepEqual(cones[3], set(3, 5)) {
		t.Errorf("PP cone(3) = %v", cones[3])
	}
	// VP-position chains are not credited in PP cones.
	vpOnly := r.ProviderPeerObserved(dsOf([]uint32{1, 3, 5}))
	if len(vpOnly[1]) != 1 {
		t.Errorf("PP cone(1) from VP position = %v", vpOnly[1])
	}
	// But BGP-observed credits them.
	bgp := r.BGPObserved(dsOf([]uint32{1, 3, 5}))
	if !reflect.DeepEqual(bgp[1], set(1, 3, 5)) {
		t.Errorf("BGP cone(1) from VP position = %v", bgp[1])
	}
}

func TestSizesAndPrefixWeighted(t *testing.T) {
	r := hierarchy()
	cones := r.Recursive()
	sizes := cones.Sizes()
	if sizes[1] != 4 || sizes[5] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
	weighted := cones.PrefixWeighted(map[uint32]int{1: 10, 3: 2, 4: 3, 5: 1})
	if weighted[1] != 16 {
		t.Errorf("prefix-weighted cone(1) = %d", weighted[1])
	}
	if weighted[3] != 3 {
		t.Errorf("prefix-weighted cone(3) = %d", weighted[3])
	}
}

func TestRank(t *testing.T) {
	sizes := map[uint32]int{1: 10, 2: 10, 3: 50}
	td := map[uint32]int{1: 5, 2: 9}
	rank := Rank(sizes, td)
	if !reflect.DeepEqual(rank, []uint32{3, 2, 1}) {
		t.Errorf("rank = %v", rank)
	}
	// Nil tie-break map: ASN ascending.
	rank = Rank(map[uint32]int{7: 1, 5: 1}, nil)
	if !reflect.DeepEqual(rank, []uint32{5, 7}) {
		t.Errorf("rank = %v", rank)
	}
}

func TestRelOrientationAndASes(t *testing.T) {
	r := hierarchy()
	if r.Rel(1, 3) != topology.P2C || r.Rel(3, 1) != topology.C2P {
		t.Error("Rel orientation wrong")
	}
	if r.Rel(1, 2) != topology.P2P {
		t.Error("peer rel wrong")
	}
	if r.Rel(1, 99) != topology.None {
		t.Error("missing link should be None")
	}
	if !reflect.DeepEqual(r.ASes(), []uint32{1, 2, 3, 4, 5}) {
		t.Errorf("ASes = %v", r.ASes())
	}
}

// TestConeNesting verifies PP ⊆ BGP-observed ⊆ recursive on a full
// simulated corpus with inferred relationships.
func TestConeNesting(t *testing.T) {
	p := topology.DefaultParams(77)
	p.ASes = 500
	topo := topology.Generate(p)
	sim, err := bgpsim.Run(topo, bgpsim.DefaultOptions(77))
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
	res := core.Infer(clean, core.Options{})
	r := NewRelations(res.Rels)
	rec := r.Recursive()
	bgp := r.BGPObserved(res.Dataset)
	pp := r.ProviderPeerObserved(res.Dataset)
	for _, asn := range r.ASes() {
		if !pp[asn][asn] || !bgp[asn][asn] || !rec[asn][asn] {
			t.Fatalf("AS %d missing from its own cone", asn)
		}
		for member := range pp[asn] {
			if !bgp[asn][member] {
				t.Fatalf("PP cone(%d) member %d not in BGP cone", asn, member)
			}
		}
		for member := range bgp[asn] {
			if !rec[asn][member] {
				t.Fatalf("BGP cone(%d) member %d not in recursive cone", asn, member)
			}
		}
	}
	// The gap must be real for large transit ASes: total recursive mass
	// strictly exceeds total PP mass.
	var recTotal, ppTotal int
	for _, asn := range r.ASes() {
		recTotal += len(rec[asn])
		ppTotal += len(pp[asn])
	}
	if recTotal <= ppTotal {
		t.Errorf("recursive total %d should exceed PP total %d", recTotal, ppTotal)
	}
}

// TestConeAgainstGroundTruth checks that the PP cone of the top AS is a
// large subset of its true cone.
func TestConeAgainstGroundTruth(t *testing.T) {
	p := topology.DefaultParams(78)
	p.ASes = 500
	topo := topology.Generate(p)
	opts := bgpsim.DefaultOptions(78)
	opts.NumVPs = 25
	sim, err := bgpsim.Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
	res := core.Infer(clean, core.Options{})
	r := NewRelations(res.Rels)
	rec := r.Recursive()

	// Compare recursive inferred cones vs ground-truth cones across the
	// inferred clique. Per-member recall varies with VP visibility (a
	// multihomed customer routed via its other provider leaves no trace
	// of this link), so assert aggregate recall and precision.
	var hits, truthTotal, inferredTotal int
	for _, t1 := range res.Clique {
		truth := topo.TrueCone(t1)
		inferred := rec[t1]
		for member := range inferred {
			if truth[member] {
				hits++
			}
		}
		truthTotal += len(truth)
		inferredTotal += len(inferred)
	}
	if recall := float64(hits) / float64(truthTotal); recall < 0.7 {
		t.Errorf("aggregate clique cone recall = %.3f, want >= 0.7", recall)
	}
	if precision := float64(hits) / float64(inferredTotal); precision < 0.9 {
		t.Errorf("aggregate clique cone precision = %.3f, want >= 0.9", precision)
	}
}

func TestAddressAndPrefixCounts(t *testing.T) {
	ds := &paths.Dataset{}
	add := func(prefix string, asns ...uint32) {
		ds.Add(paths.Path{Collector: "c", Prefix: netip.MustParsePrefix(prefix), ASNs: asns})
	}
	add("10.0.0.0/24", 1, 2, 5)
	add("10.0.0.0/24", 3, 2, 5) // same prefix, other VP: counted once
	add("10.0.1.0/25", 1, 2, 5)
	add("10.9.0.0/16", 1, 2, 6)
	pc := PrefixCounts(ds)
	if pc[5] != 2 || pc[6] != 1 {
		t.Errorf("prefix counts = %v", pc)
	}
	ac := AddressCounts(ds)
	if ac[5] != 256+128 {
		t.Errorf("addresses(5) = %d", ac[5])
	}
	if ac[6] != 65536 {
		t.Errorf("addresses(6) = %d", ac[6])
	}
}

func TestAddressCountsIs4In6(t *testing.T) {
	ds := &paths.Dataset{}
	add := func(prefix string, asns ...uint32) {
		ds.Add(paths.Path{Collector: "c", Prefix: netip.MustParsePrefix(prefix), ASNs: asns})
	}
	// MRT feeds can carry IPv4 prefixes in IPv4-mapped IPv6 form; the
	// embedded /24 must be counted like its plain-IPv4 twin.
	add("::ffff:10.0.0.0/120", 1, 2, 5)
	if got := AddressCounts(ds)[5]; got != 256 {
		t.Errorf("addresses(5) from 4-in-6 prefix = %d, want 256", got)
	}
	// The plain-IPv4 form of the same prefix is a duplicate, not new
	// address space.
	add("10.0.0.0/24", 1, 2, 5)
	add("10.1.0.0/24", 1, 2, 5)
	if got := AddressCounts(ds)[5]; got != 512 {
		t.Errorf("addresses(5) after plain duplicate + new /24 = %d, want 512", got)
	}
	// Native IPv6 and mapped prefixes shorter than /96 stay excluded.
	add("2001:db8::/32", 1, 2, 6)
	add("::ffff:0.0.0.0/64", 1, 2, 6)
	if got := AddressCounts(ds)[6]; got != 0 {
		t.Errorf("addresses(6) from IPv6 prefixes = %d, want 0", got)
	}
}

func TestAddressWeightedCones(t *testing.T) {
	r := hierarchy()
	cones := r.Recursive()
	weighted := cones.AddressWeighted(map[uint32]int64{1: 1000, 3: 256, 4: 512, 5: 128})
	if weighted[1] != 1000+256+512+128 {
		t.Errorf("address-weighted cone(1) = %d", weighted[1])
	}
	if weighted[3] != 256+128 {
		t.Errorf("address-weighted cone(3) = %d", weighted[3])
	}
}

func TestPPDCRoundTrip(t *testing.T) {
	r := hierarchy()
	sets := r.Recursive()
	var buf bytes.Buffer
	if err := WritePPDC(&buf, sets, "ppdc-ases test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# ppdc-ases test") {
		t.Error("comment missing")
	}
	if !strings.Contains(out, "1 1 3 4 5\n") {
		t.Errorf("cone line for AS1 missing:\n%s", out)
	}
	got, err := ReadPPDC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sets) {
		t.Errorf("round trip:\ngot  %v\nwant %v", got, sets)
	}
}

func TestReadPPDCErrors(t *testing.T) {
	cases := []string{
		"x 1 2",    // bad ASN
		"1 2 y",    // bad member
		"1 2\n1 3", // duplicate AS
	}
	for i, c := range cases {
		if _, err := ReadPPDC(strings.NewReader(c)); err == nil {
			t.Errorf("case %d (%q) should fail", i, c)
		}
	}
	// Self-membership is restored even if omitted in the file.
	got, err := ReadPPDC(strings.NewReader("7 8 9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !got[7][7] {
		t.Error("AS not in its own cone after read")
	}
}
