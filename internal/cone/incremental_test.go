package cone

import (
	"reflect"
	"testing"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/topology"
)

// creditCorpus builds a realistic inferred corpus: topology → bgpsim →
// sanitize → infer, returning the post-discard dataset and its result.
func creditCorpus(t *testing.T, seed int64, ases int) (*paths.Dataset, *core.Result) {
	t.Helper()
	p := topology.DefaultParams(seed)
	p.ASes = ases
	topo := topology.Generate(p)
	sim, err := bgpsim.Run(topo, bgpsim.DefaultOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
	res := core.Infer(clean, core.Options{})
	return res.Dataset, res
}

// TestPairCountsMatchesBatch proves the refcounted crediting walk is
// bit-identical to the batch provider/peer-observed engine: crediting
// every post-discard path +1 and building the slab must equal
// ProviderPeerObservedBits.ExportSlab over the same corpus.
func TestPairCountsMatchesBatch(t *testing.T) {
	ds, res := creditCorpus(t, 77, 400)
	r := NewRelations(res.Rels)
	wantSlab, _ := r.ProviderPeerObservedBits(ds).ExportSlab()

	pc := NewPairCounts()
	for _, p := range ds.Paths {
		pc.Credit(res.Rel, p.ASNs, 1)
	}
	got := pc.Slab(r.Index())
	if !reflect.DeepEqual(got, wantSlab) {
		t.Fatal("incremental slab differs from batch ProviderPeerObservedBits")
	}
	if pc.Dirty() {
		t.Error("Slab must reset the touched set")
	}
}

// TestPairCountsPatch removes a deterministic subset of paths, patches
// the previous slab, and checks the result equals a from-scratch batch
// build over the surviving corpus — then re-adds the paths and checks
// the patch rolls cleanly back to the original slab.
func TestPairCountsPatch(t *testing.T) {
	ds, res := creditCorpus(t, 78, 400)
	r := NewRelations(res.Rels)
	idx := r.Index()

	pc := NewPairCounts()
	for _, p := range ds.Paths {
		pc.Credit(res.Rel, p.ASNs, 1)
	}
	full := pc.Slab(idx)

	// Withdraw every third path.
	survivors := &paths.Dataset{}
	for i, p := range ds.Paths {
		if i%3 == 0 {
			pc.Credit(res.Rel, p.ASNs, -1)
		} else {
			survivors.Add(p)
		}
	}
	patched := pc.Patch(idx, full)
	wantSlab, _ := r.ProviderPeerObservedBits(survivors).ExportSlab()
	if !reflect.DeepEqual(patched, wantSlab) {
		t.Fatal("patched slab differs from batch build over the surviving corpus")
	}

	// The original slab must be untouched (Patch copies).
	again := pc.Slab(idx)
	if !reflect.DeepEqual(again, patched) {
		t.Fatal("full rebuild after withdrawals differs from the patch")
	}

	// Re-announce the withdrawn paths: patch returns to the full slab.
	for i, p := range ds.Paths {
		if i%3 == 0 {
			pc.Credit(res.Rel, p.ASNs, 1)
		}
	}
	back := pc.Patch(idx, patched)
	if !reflect.DeepEqual(back, full) {
		t.Fatal("re-announcing withdrawn paths did not restore the original slab")
	}
}

// TestPairCountsUnderflowPanics pins the refcount-discipline contract:
// removing a path that was never credited is a caller bug, not silent
// corruption.
func TestPairCountsUnderflowPanics(t *testing.T) {
	pc := NewPairCounts()
	rel := func(x, y uint32) topology.Relationship {
		return topology.P2C // every hop descends
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on refcount underflow")
		}
	}()
	pc.Credit(rel, []uint32{1, 2, 3, 4}, -1)
}
