package cone

import (
	"github.com/asrank-go/asrank/internal/obs"
)

// Cone-engine metrics. The engine label names the cone definition:
// recursive (transitive closure), bgp (BGP-observed), pp
// (provider/peer observed).
var (
	coneBuildDuration = obs.Default().HistogramVec("asrank_cone_build_duration_seconds",
		"Wall time to compute one cone product.", obs.DurationBuckets, "engine")
	coneMemo = obs.Default().CounterVec("asrank_cone_memo_total",
		"Memoized cone-product lookups, by engine and outcome.", "engine", "result")
)

// engineName maps the observed-cone crediting rule to its label.
func engineName(needEntry bool) string {
	if needEntry {
		return "pp"
	}
	return "bgp"
}
