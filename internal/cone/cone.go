// Package cone computes customer cones — the set of ASes an AS can
// reach by only traversing customer links — under the three definitions
// the paper compares:
//
//   - Recursive: the transitive closure of inferred p2c links. The
//     loosest definition; it overcounts because a multihomed customer
//     need not actually route through every provider.
//   - BGP-observed: only ASes seen in actual BGP paths descending from
//     the AS along observed customer links.
//   - Provider/peer observed (PP): only ASes seen in paths that *enter*
//     the AS from one of its providers or peers and then descend — the
//     strictest evidence, and the definition CAIDA's AS Rank uses.
//
// For every AS: PP cone ⊆ BGP-observed cone ⊆ recursive cone, and the
// AS is always in its own cone.
package cone

import (
	"sort"

	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/topology"
)

// Sets maps each AS to its cone membership set (which includes the AS
// itself).
type Sets map[uint32]map[uint32]bool

// Sizes returns per-AS cone sizes in number of ASes.
func (s Sets) Sizes() map[uint32]int {
	out := make(map[uint32]int, len(s))
	for asn, cone := range s {
		out[asn] = len(cone)
	}
	return out
}

// PrefixWeighted returns per-AS cone sizes weighted by the number of
// prefixes each cone member originates (the paper's "cone by prefixes").
func (s Sets) PrefixWeighted(prefixCount map[uint32]int) map[uint32]int {
	out := make(map[uint32]int, len(s))
	for asn, cone := range s {
		total := 0
		for member := range cone {
			total += prefixCount[member]
		}
		out[asn] = total
	}
	return out
}

// AddressWeighted returns per-AS cone sizes weighted by the number of
// IPv4 addresses each cone member originates (the paper's "cone by
// addresses"), given per-AS address counts — see AddressCounts.
func (s Sets) AddressWeighted(addrCount map[uint32]int64) map[uint32]int64 {
	out := make(map[uint32]int64, len(s))
	for asn, cone := range s {
		var total int64
		for member := range cone {
			total += addrCount[member]
		}
		out[asn] = total
	}
	return out
}

// AddressCounts sums the address span of each origin's prefixes from a
// path corpus: a /24 contributes 256 addresses. Overlapping prefixes
// from the same origin are counted once per distinct prefix, which
// matches how the paper counts routed space.
func AddressCounts(ds *paths.Dataset) map[uint32]int64 {
	seen := make(map[uint32]map[string]bool)
	out := make(map[uint32]int64)
	for _, p := range ds.Paths {
		if !p.Prefix.IsValid() || !p.Prefix.Addr().Is4() {
			continue
		}
		origin := p.Origin()
		m, ok := seen[origin]
		if !ok {
			m = make(map[string]bool)
			seen[origin] = m
		}
		key := p.Prefix.String()
		if m[key] {
			continue
		}
		m[key] = true
		out[origin] += int64(1) << (32 - p.Prefix.Bits())
	}
	return out
}

// PrefixCounts counts each origin's distinct prefixes in a corpus.
func PrefixCounts(ds *paths.Dataset) map[uint32]int {
	seen := make(map[uint32]map[string]bool)
	out := make(map[uint32]int)
	for _, p := range ds.Paths {
		if !p.Prefix.IsValid() {
			continue
		}
		origin := p.Origin()
		m, ok := seen[origin]
		if !ok {
			m = make(map[string]bool)
			seen[origin] = m
		}
		key := p.Prefix.String()
		if m[key] {
			continue
		}
		m[key] = true
		out[origin]++
	}
	return out
}

// Relations indexes an inferred (or ground-truth) relationship set for
// cone computation.
type Relations struct {
	customers map[uint32][]uint32
	rel       map[paths.Link]topology.Relationship
	ases      []uint32
}

// NewRelations indexes rels, whose orientation is canonical (relative to
// Link.A, as produced by core.Infer and topology.Links).
func NewRelations(rels map[paths.Link]topology.Relationship) *Relations {
	r := &Relations{
		customers: make(map[uint32][]uint32),
		rel:       make(map[paths.Link]topology.Relationship, len(rels)),
	}
	seen := make(map[uint32]bool)
	for l, rel := range rels {
		r.rel[l] = rel
		switch rel {
		case topology.P2C:
			r.customers[l.A] = append(r.customers[l.A], l.B)
		case topology.C2P:
			r.customers[l.B] = append(r.customers[l.B], l.A)
		}
		if !seen[l.A] {
			seen[l.A] = true
			r.ases = append(r.ases, l.A)
		}
		if !seen[l.B] {
			seen[l.B] = true
			r.ases = append(r.ases, l.B)
		}
	}
	sort.Slice(r.ases, func(i, j int) bool { return r.ases[i] < r.ases[j] })
	for _, cs := range r.customers {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	return r
}

// Rel returns the relationship of x relative to y (P2C: x provides to y).
func (r *Relations) Rel(x, y uint32) topology.Relationship {
	rel, ok := r.rel[paths.NewLink(x, y)]
	if !ok {
		return topology.None
	}
	if paths.NewLink(x, y).A == x {
		return rel
	}
	return rel.Invert()
}

// ASes returns every AS appearing in the relationship set, ascending.
func (r *Relations) ASes() []uint32 { return r.ases }

// Recursive computes the transitive-closure customer cone of every AS.
func (r *Relations) Recursive() Sets {
	out := make(Sets, len(r.ases))
	for _, asn := range r.ases {
		cone := map[uint32]bool{}
		stack := []uint32{asn}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cone[x] {
				continue
			}
			cone[x] = true
			stack = append(stack, r.customers[x]...)
		}
		out[asn] = cone
	}
	return out
}

// RecursiveOne computes a single AS's recursive cone.
func (r *Relations) RecursiveOne(asn uint32) map[uint32]bool {
	cone := map[uint32]bool{}
	stack := []uint32{asn}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cone[x] {
			continue
		}
		cone[x] = true
		stack = append(stack, r.customers[x]...)
	}
	return cone
}

// BGPObserved computes cones from observed paths: starting at each
// position where the next hop is one of the AS's customers, every AS on
// the maximal descending (p2c) chain is in the cone.
func (r *Relations) BGPObserved(ds *paths.Dataset) Sets {
	out := r.selfCones()
	for _, p := range ds.Paths {
		r.addChains(out, p.ASNs, false)
	}
	return out
}

// ProviderPeerObserved computes the PP cone: like BGPObserved, but a
// position only contributes when the path entered the AS from one of
// its providers or peers — third parties demonstrably routing through
// the AS to reach the cone member.
func (r *Relations) ProviderPeerObserved(ds *paths.Dataset) Sets {
	out := r.selfCones()
	for _, p := range ds.Paths {
		r.addChains(out, p.ASNs, true)
	}
	return out
}

func (r *Relations) selfCones() Sets {
	out := make(Sets, len(r.ases))
	for _, asn := range r.ases {
		out[asn] = map[uint32]bool{asn: true}
	}
	return out
}

// addChains walks one path and credits descending chains to cones.
// With needEntry, a chain from position i is credited only when hop
// i-1 → i comes from a provider or peer of path[i].
func (r *Relations) addChains(out Sets, asns []uint32, needEntry bool) {
	// descendTo[i] is the furthest index reachable from i by consecutive
	// p2c hops; computed right to left.
	n := len(asns)
	if n < 2 {
		return
	}
	descendTo := make([]int, n)
	descendTo[n-1] = n - 1
	for i := n - 2; i >= 0; i-- {
		if r.Rel(asns[i], asns[i+1]) == topology.P2C {
			descendTo[i] = descendTo[i+1]
		} else {
			descendTo[i] = i
		}
	}
	for i := 0; i < n-1; i++ {
		if descendTo[i] == i {
			continue // no customer hop here
		}
		if needEntry {
			if i == 0 {
				continue // the VP has no entering hop
			}
			switch r.Rel(asns[i-1], asns[i]) {
			case topology.P2C, topology.P2P:
				// provider or peer of asns[i]: credited
			default:
				continue
			}
		}
		cone := out[asns[i]]
		if cone == nil {
			cone = map[uint32]bool{asns[i]: true}
			out[asns[i]] = cone
		}
		for j := i + 1; j <= descendTo[i]; j++ {
			cone[asns[j]] = true
		}
	}
}

// Rank orders ASes by decreasing cone size, tie-broken by decreasing
// transit degree (may be nil) and then ascending ASN — the AS Rank
// ordering.
func Rank(sizes map[uint32]int, transitDegree map[uint32]int) []uint32 {
	out := make([]uint32, 0, len(sizes))
	for asn := range sizes {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if sizes[a] != sizes[b] {
			return sizes[a] > sizes[b]
		}
		if transitDegree[a] != transitDegree[b] {
			return transitDegree[a] > transitDegree[b]
		}
		return a < b
	})
	return out
}
