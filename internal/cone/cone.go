// Package cone computes customer cones — the set of ASes an AS can
// reach by only traversing customer links — under the three definitions
// the paper compares:
//
//   - Recursive: the transitive closure of inferred p2c links. The
//     loosest definition; it overcounts because a multihomed customer
//     need not actually route through every provider.
//   - BGP-observed: only ASes seen in actual BGP paths descending from
//     the AS along observed customer links.
//   - Provider/peer observed (PP): only ASes seen in paths that *enter*
//     the AS from one of its providers or peers and then descend — the
//     strictest evidence, and the definition CAIDA's AS Rank uses.
//
// For every AS: PP cone ⊆ BGP-observed cone ⊆ recursive cone, and the
// AS is always in its own cone.
//
// The engine interns ASNs into a dense index (internal/asindex) and
// accumulates each cone as a bitset, fanning the closure and the
// per-path chain crediting out over a bounded worker pool with a
// deterministic shard merge, so results are identical to a sequential
// run regardless of worker count.
package cone

import (
	"context"
	"net/netip"
	"sort"
	"sync"
	"time"

	"github.com/asrank-go/asrank/internal/asindex"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/pool"
	"github.com/asrank-go/asrank/internal/topology"
	"github.com/asrank-go/asrank/internal/trace"
)

// Sets maps each AS to its cone membership set (which includes the AS
// itself).
type Sets map[uint32]map[uint32]bool

// Sizes returns per-AS cone sizes in number of ASes.
func (s Sets) Sizes() map[uint32]int {
	out := make(map[uint32]int, len(s))
	for asn, cone := range s {
		out[asn] = len(cone)
	}
	return out
}

// PrefixWeighted returns per-AS cone sizes weighted by the number of
// prefixes each cone member originates (the paper's "cone by prefixes").
func (s Sets) PrefixWeighted(prefixCount map[uint32]int) map[uint32]int {
	out := make(map[uint32]int, len(s))
	for asn, cone := range s {
		total := 0
		for member := range cone {
			total += prefixCount[member]
		}
		out[asn] = total
	}
	return out
}

// AddressWeighted returns per-AS cone sizes weighted by the number of
// IPv4 addresses each cone member originates (the paper's "cone by
// addresses"), given per-AS address counts — see AddressCounts.
func (s Sets) AddressWeighted(addrCount map[uint32]int64) map[uint32]int64 {
	out := make(map[uint32]int64, len(s))
	for asn, cone := range s {
		var total int64
		for member := range cone {
			total += addrCount[member]
		}
		out[asn] = total
	}
	return out
}

// v4Prefix normalizes a corpus prefix to plain IPv4, accepting the
// IPv4-mapped-in-IPv6 form (::ffff:a.b.c.d/96+n) that MRT feeds can
// legitimately carry. It reports false for everything else.
func v4Prefix(p netip.Prefix) (netip.Prefix, bool) {
	if !p.IsValid() {
		return netip.Prefix{}, false
	}
	addr, bits := p.Addr(), p.Bits()
	if addr.Is4In6() {
		if bits < 96 {
			return netip.Prefix{}, false
		}
		addr, bits = addr.Unmap(), bits-96
	}
	if !addr.Is4() {
		return netip.Prefix{}, false
	}
	return netip.PrefixFrom(addr, bits), true
}

// AddressCounts sums the address span of each origin's prefixes from a
// path corpus: a /24 contributes 256 addresses. Overlapping prefixes
// from the same origin are counted once per distinct prefix, which
// matches how the paper counts routed space. IPv4-mapped IPv6 prefixes
// are normalized to their embedded IPv4 prefix first.
func AddressCounts(ds *paths.Dataset) map[uint32]int64 {
	seen := make(map[uint32]map[string]bool)
	out := make(map[uint32]int64)
	for _, p := range ds.Paths {
		prefix, ok := v4Prefix(p.Prefix)
		if !ok {
			continue
		}
		origin := p.Origin()
		m, ok := seen[origin]
		if !ok {
			m = make(map[string]bool)
			seen[origin] = m
		}
		key := prefix.String()
		if m[key] {
			continue
		}
		m[key] = true
		out[origin] += int64(1) << (32 - prefix.Bits())
	}
	return out
}

// PrefixCounts counts each origin's distinct prefixes in a corpus.
func PrefixCounts(ds *paths.Dataset) map[uint32]int {
	seen := make(map[uint32]map[string]bool)
	out := make(map[uint32]int)
	for _, p := range ds.Paths {
		if !p.Prefix.IsValid() {
			continue
		}
		origin := p.Origin()
		m, ok := seen[origin]
		if !ok {
			m = make(map[string]bool)
			seen[origin] = m
		}
		key := p.Prefix.String()
		if m[key] {
			continue
		}
		m[key] = true
		out[origin]++
	}
	return out
}

// Relations indexes an inferred (or ground-truth) relationship set for
// cone computation: ASNs are interned into a dense index and the p2c
// digraph is stored as interned adjacency lists.
//
// Relations is immutable after construction (WithWorkers only tunes how
// work is sharded, never what is computed), so every cone product is
// memoized: repeated calls to Recursive, BGPObserved,
// ProviderPeerObserved, or their *Bits variants return the same shared
// value. Callers must treat returned Sets and BitSets as read-only.
type Relations struct {
	rel     map[paths.Link]topology.Relationship
	idx     *asindex.Index
	custIdx [][]int32       // provider position → customer positions, ascending
	workers int             // worker-pool size; <= 0 selects GOMAXPROCS
	ctx     context.Context // trace-span parent for builds; nil = background

	mu      sync.Mutex
	recBits *BitSets
	recSets Sets
	obsBits map[obsKey]*BitSets
	obsSets map[obsKey]Sets
}

// obsKey identifies one observed-cone product: the path corpus it was
// computed over and which crediting rule (BGP vs provider/peer) applied.
type obsKey struct {
	ds        *paths.Dataset
	needEntry bool
}

// NewRelations indexes rels, whose orientation is canonical (relative to
// Link.A, as produced by core.Infer and topology.Links). The map is
// retained, not copied — callers must not mutate it afterwards.
func NewRelations(rels map[paths.Link]topology.Relationship) *Relations {
	asns := make([]uint32, 0, 2*len(rels))
	for l := range rels {
		//lint:ignore nodeterminismleak asindex.New sorts and dedups its input, so collection order cannot leak
		asns = append(asns, l.A, l.B)
	}
	r := &Relations{
		rel: rels,
		idx: asindex.New(asns),
	}
	r.custIdx = make([][]int32, r.idx.Len())
	for l, rel := range rels {
		var provider, customer uint32
		switch rel {
		case topology.P2C:
			provider, customer = l.A, l.B
		case topology.C2P:
			provider, customer = l.B, l.A
		default:
			continue
		}
		pi, _ := r.idx.Pos(provider)
		ci, _ := r.idx.Pos(customer)
		//lint:ignore nodeterminismleak every custIdx row is sorted immediately below
		r.custIdx[pi] = append(r.custIdx[pi], ci)
	}
	for _, cs := range r.custIdx {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	return r
}

// WithWorkers sets the worker-pool size used by the cone engines and
// returns r for chaining. Values <= 0 (the default) select
// runtime.GOMAXPROCS. Worker count never changes results, only how the
// work is sharded.
func (r *Relations) WithWorkers(n int) *Relations {
	r.workers = n
	return r
}

// WithContext sets the context cone builds start their trace spans
// from and returns r for chaining (like WithWorkers, this tunes
// observability, never what is computed). When the context carries a
// trace span, each uncached build records a "cone.build" span (engine
// attribute: recursive/bgp/pp) with closure/credit/merge children and
// per-shard pool.task spans.
func (r *Relations) WithContext(ctx context.Context) *Relations {
	r.ctx = ctx
	return r
}

// buildCtx returns the span-parent context for build work.
func (r *Relations) buildCtx() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// Rel returns the relationship of x relative to y (P2C: x provides to y).
func (r *Relations) Rel(x, y uint32) topology.Relationship {
	rel, ok := r.rel[paths.NewLink(x, y)]
	if !ok {
		return topology.None
	}
	if paths.NewLink(x, y).A == x {
		return rel
	}
	return rel.Invert()
}

// ASes returns every AS appearing in the relationship set, ascending.
// The returned slice is shared; callers must not modify it.
func (r *Relations) ASes() []uint32 { return r.idx.ASNs() }

// Index returns the dense ASN index the engine interned.
func (r *Relations) Index() *asindex.Index { return r.idx }

// Recursive computes the transitive-closure customer cone of every AS.
// The result is memoized; treat it as read-only.
func (r *Relations) Recursive() Sets {
	bits := r.RecursiveBits()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.recSets == nil {
		r.recSets = bits.Sets()
	}
	return r.recSets
}

// RecursiveBits is Recursive in the compact bitset representation,
// memoized like Recursive.
func (r *Relations) RecursiveBits() *BitSets {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.recBits == nil {
		coneMemo.With("recursive", "miss").Inc()
		t0 := time.Now()
		ctx, span := trace.StartSpan(r.buildCtx(), "cone.build")
		span.SetAttr("engine", "recursive")
		r.recBits = r.computeRecursiveBits(ctx)
		span.End()
		coneBuildDuration.With("recursive").ObserveSince(t0)
	} else {
		coneMemo.With("recursive", "hit").Inc()
	}
	return r.recBits
}

// computeRecursiveBits does the closure. On the (usual) acyclic p2c
// digraph each cone is the word-wise OR of its customers' cones in
// reverse topological order; cyclic inputs — possible when indexing an
// arbitrary relationship file — fall back to an independent DFS per AS,
// sharded across the worker pool.
func (r *Relations) computeRecursiveBits(ctx context.Context) *BitSets {
	n := r.idx.Len()
	cones := asindex.NewBitsets(n, n)
	closureCtx, closureSpan := trace.StartSpan(ctx, "cone.closure")
	defer closureSpan.End()
	if order, acyclic := r.reverseTopo(); acyclic {
		closureSpan.SetAttr("order", "kahn")
		for _, x := range order {
			b := cones[x]
			b.Set(x)
			for _, c := range r.custIdx[x] {
				b.Or(cones[c])
			}
		}
	} else {
		closureSpan.SetAttr("order", "dfs")
		pool.ChunksCtx(closureCtx, r.workers, n, 64, func(_ context.Context, lo, hi int) {
			var stack []int32
			for i := lo; i < hi; i++ {
				b := cones[i]
				b.Set(int32(i))
				stack = append(stack[:0], int32(i))
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, c := range r.custIdx[x] {
						if b.TrySet(c) {
							stack = append(stack, c)
						}
					}
				}
			}
		})
	}
	return &BitSets{idx: r.idx, cones: cones, workers: r.workers}
}

// reverseTopo returns the positions of the p2c digraph ordered so every
// customer precedes its providers, and whether the graph is acyclic
// (positions on a cycle never drain in Kahn's algorithm).
func (r *Relations) reverseTopo() ([]int32, bool) {
	n := r.idx.Len()
	indeg := make([]int32, n) // providers pointing at each position
	for _, cs := range r.custIdx {
		for _, c := range cs {
			indeg[c]++
		}
	}
	order := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			order = append(order, int32(i))
		}
	}
	for head := 0; head < len(order); head++ {
		for _, c := range r.custIdx[order[head]] {
			if indeg[c]--; indeg[c] == 0 {
				order = append(order, c)
			}
		}
	}
	if len(order) < n {
		return nil, false
	}
	// order currently runs providers → customers; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, true
}

// RecursiveOne computes a single AS's recursive cone.
func (r *Relations) RecursiveOne(asn uint32) map[uint32]bool {
	start, ok := r.idx.Pos(asn)
	if !ok {
		return map[uint32]bool{asn: true}
	}
	n := r.idx.Len()
	b := asindex.NewBitset(n)
	b.Set(start)
	stack := []int32{start}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range r.custIdx[x] {
			if b.TrySet(c) {
				stack = append(stack, c)
			}
		}
	}
	cone := make(map[uint32]bool, b.Count())
	b.ForEach(func(i int32) { cone[r.idx.ASN(i)] = true })
	return cone
}

// BGPObserved computes cones from observed paths: starting at each
// position where the next hop is one of the AS's customers, every AS on
// the maximal descending (p2c) chain is in the cone. The result is
// memoized per dataset; treat it as read-only.
func (r *Relations) BGPObserved(ds *paths.Dataset) Sets {
	return r.observedSetsCached(ds, false)
}

// BGPObservedBits is BGPObserved in the compact bitset representation,
// memoized like BGPObserved.
func (r *Relations) BGPObservedBits(ds *paths.Dataset) *BitSets {
	return r.observedBitsCached(ds, false)
}

// ProviderPeerObserved computes the PP cone: like BGPObserved, but a
// position only contributes when the path entered the AS from one of
// its providers or peers — third parties demonstrably routing through
// the AS to reach the cone member. The result is memoized per dataset;
// treat it as read-only.
func (r *Relations) ProviderPeerObserved(ds *paths.Dataset) Sets {
	return r.observedSetsCached(ds, true)
}

// ProviderPeerObservedBits is ProviderPeerObserved in the compact
// bitset representation, memoized like ProviderPeerObserved.
func (r *Relations) ProviderPeerObservedBits(ds *paths.Dataset) *BitSets {
	return r.observedBitsCached(ds, true)
}

// observedBitsCached memoizes observedBits per (dataset, rule) pair.
// Datasets are immutable once built (Sanitize returns a fresh one), so
// pointer identity is a sound cache key.
func (r *Relations) observedBitsCached(ds *paths.Dataset, needEntry bool) *BitSets {
	k := obsKey{ds, needEntry}
	engine := engineName(needEntry)
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.obsBits[k]
	if !ok {
		coneMemo.With(engine, "miss").Inc()
		t0 := time.Now()
		ctx, span := trace.StartSpan(r.buildCtx(), "cone.build")
		span.SetAttr("engine", engine)
		span.SetAttrInt("paths", int64(len(ds.Paths)))
		b = r.observedBits(ctx, ds, needEntry)
		span.End()
		coneBuildDuration.With(engine).ObserveSince(t0)
		if r.obsBits == nil {
			r.obsBits = make(map[obsKey]*BitSets)
		}
		r.obsBits[k] = b
	} else {
		coneMemo.With(engine, "hit").Inc()
	}
	return b
}

// observedSetsCached memoizes the materialized map form alongside the
// bitset form.
func (r *Relations) observedSetsCached(ds *paths.Dataset, needEntry bool) Sets {
	bits := r.observedBitsCached(ds, needEntry)
	k := obsKey{ds, needEntry}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.obsSets[k]
	if !ok {
		s = bits.Sets()
		if r.obsSets == nil {
			r.obsSets = make(map[obsKey]Sets)
		}
		r.obsSets[k] = s
	}
	return s
}

// observedBits shards the path corpus across the worker pool, credits
// descending chains into per-shard cone accumulators, and merges the
// shards in fixed shard order so the result is independent of worker
// scheduling.
func (r *Relations) observedBits(ctx context.Context, ds *paths.Dataset, needEntry bool) *BitSets {
	n := r.idx.Len()
	shards := make([][]asindex.Bitset, pool.NumShards(r.workers, len(ds.Paths)))
	creditCtx, creditSpan := trace.StartSpan(ctx, "cone.credit")
	pool.RangeCtx(creditCtx, r.workers, len(ds.Paths), func(_ context.Context, shard, lo, hi int) {
		local := make([]asindex.Bitset, n)
		var scratch chainScratch
		for _, p := range ds.Paths[lo:hi] {
			r.addChains(local, p.ASNs, needEntry, &scratch)
		}
		shards[shard] = local
	})
	creditSpan.End()
	cones := asindex.NewBitsets(n, n)
	mergeCtx, mergeSpan := trace.StartSpan(ctx, "cone.merge")
	defer mergeSpan.End()
	pool.ChunksCtx(mergeCtx, r.workers, n, 64, func(_ context.Context, lo, hi int) {
		for i := lo; i < hi; i++ {
			b := cones[i]
			for _, local := range shards {
				if local[i] != nil {
					b.Or(local[i])
				}
			}
			b.Set(int32(i)) // an AS is always in its own cone
		}
	})
	return &BitSets{idx: r.idx, cones: cones, workers: r.workers}
}

// chainScratch holds per-worker buffers addChains reuses across paths.
type chainScratch struct {
	pos       []int32
	hopRel    []topology.Relationship
	descendTo []int
}

// addChains walks one path and credits descending chains into cones.
// With needEntry, a chain from position i is credited only when hop
// i-1 → i comes from a provider or peer of path[i].
func (r *Relations) addChains(cones []asindex.Bitset, asns []uint32, needEntry bool, sc *chainScratch) {
	n := len(asns)
	if n < 2 {
		return
	}
	if cap(sc.pos) < n {
		sc.pos = make([]int32, n)
		sc.hopRel = make([]topology.Relationship, n)
		sc.descendTo = make([]int, n)
	}
	pos, hopRel, descendTo := sc.pos[:n], sc.hopRel[:n-1], sc.descendTo[:n]
	for i, a := range asns {
		if p, ok := r.idx.Pos(a); ok {
			pos[i] = p
		} else {
			pos[i] = -1
		}
	}
	for i := 0; i+1 < n; i++ {
		hopRel[i] = r.Rel(asns[i], asns[i+1])
	}
	// descendTo[i] is the furthest index reachable from i by consecutive
	// p2c hops; computed right to left.
	descendTo[n-1] = n - 1
	for i := n - 2; i >= 0; i-- {
		if hopRel[i] == topology.P2C {
			descendTo[i] = descendTo[i+1]
		} else {
			descendTo[i] = i
		}
	}
	for i := 0; i < n-1; i++ {
		if descendTo[i] == i {
			continue // no customer hop here
		}
		if needEntry {
			if i == 0 {
				continue // the VP has no entering hop
			}
			switch hopRel[i-1] {
			case topology.P2C, topology.P2P:
				// provider or peer of asns[i]: credited
			default:
				continue
			}
		}
		// A p2c hop out of position i implies the link is in the
		// relationship set, so every chain position is interned.
		cone := cones[pos[i]]
		if cone == nil {
			cone = asindex.NewBitset(len(r.custIdx))
			cone.Set(pos[i])
			cones[pos[i]] = cone
		}
		for j := i + 1; j <= descendTo[i]; j++ {
			cone.Set(pos[j])
		}
	}
}

// Rank orders ASes by decreasing cone size, tie-broken by decreasing
// transit degree (may be nil) and then ascending ASN — the AS Rank
// ordering.
func Rank(sizes map[uint32]int, transitDegree map[uint32]int) []uint32 {
	out := make([]uint32, 0, len(sizes))
	for asn := range sizes {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if sizes[a] != sizes[b] {
			return sizes[a] > sizes[b]
		}
		if transitDegree[a] != transitDegree[b] {
			return transitDegree[a] > transitDegree[b]
		}
		return a < b
	})
	return out
}
