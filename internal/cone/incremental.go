package cone

import (
	"github.com/asrank-go/asrank/internal/asindex"
	"github.com/asrank-go/asrank/internal/topology"
)

// RelLookup answers relationship queries during incremental crediting:
// the relationship of x relative to y (P2C: x provides to y). Both
// Relations.Rel and core.Result.Rel have this shape.
type RelLookup func(x, y uint32) topology.Relationship

// PairCounts maintains, for every (owner, member) ASN pair, how many
// distinct corpus paths credit member into owner's provider/peer-
// observed customer cone — the reference-counted form of the addChains
// crediting walk with needEntry=true. Credits commute, so a streaming
// engine can apply path adds and removes in any order and the pair
// state is a pure function of the current (path set, relationship set):
// the slab built from the counts is bit-identical to
// ProviderPeerObservedBits over the equivalent batch corpus.
//
// PairCounts is not safe for concurrent use; the streaming engine
// serializes all mutations.
type PairCounts struct {
	counts  map[uint64]int
	touched map[uint64]struct{} // pairs whose membership (count>0) changed since the last Slab/Patch

	// Crediting scratch, reused across Credit calls.
	hopRel    []topology.Relationship
	descendTo []int
}

// NewPairCounts returns an empty credit table.
func NewPairCounts() *PairCounts {
	return &PairCounts{
		counts:  make(map[uint64]int),
		touched: make(map[uint64]struct{}),
	}
}

func pairKey(owner, member uint32) uint64 {
	return uint64(owner)<<32 | uint64(member)
}

// Credit walks one path under the given relationships and adjusts the
// pair refcounts by d (+1 when the path enters the corpus, -1 when it
// leaves). The walk mirrors addChains with needEntry=true exactly: a
// descending p2c chain out of position i is credited to asns[i] only
// when hop i-1 → i comes from a provider or peer of asns[i]. Self
// membership is not refcounted — Slab and Patch set every position's
// self bit unconditionally, as the batch merge does.
//
// A path must be uncredited with the same relationships it was credited
// under; the streaming engine guarantees this by re-crediting affected
// paths whenever a link's relationship changes.
//
// The scratch slices grow by capacity-guarded make calls only — the
// steady state over a warm engine is allocation-free, which is what
// the hotpath annotation holds it to.
//
//asrank:hotpath
func (pc *PairCounts) Credit(rel RelLookup, asns []uint32, d int) {
	n := len(asns)
	if n < 2 {
		return
	}
	if cap(pc.hopRel) < n {
		pc.hopRel = make([]topology.Relationship, n)
		pc.descendTo = make([]int, n)
	}
	hopRel, descendTo := pc.hopRel[:n-1], pc.descendTo[:n]
	for i := 0; i+1 < n; i++ {
		hopRel[i] = rel(asns[i], asns[i+1])
	}
	// descendTo[i] is the furthest index reachable from i by consecutive
	// p2c hops; computed right to left (same recurrence as addChains).
	descendTo[n-1] = n - 1
	for i := n - 2; i >= 0; i-- {
		if hopRel[i] == topology.P2C {
			descendTo[i] = descendTo[i+1]
		} else {
			descendTo[i] = i
		}
	}
	for i := 1; i < n-1; i++ { // i == 0 skipped: the VP has no entering hop
		if descendTo[i] == i {
			continue // no customer hop here
		}
		switch hopRel[i-1] {
		case topology.P2C, topology.P2P:
			// provider or peer of asns[i]: credited
		default:
			continue
		}
		owner := asns[i]
		for j := i + 1; j <= descendTo[i]; j++ {
			pc.add(owner, asns[j], d)
		}
	}
}

// add adjusts one pair refcount, tracking 0↔1 membership transitions.
func (pc *PairCounts) add(owner, member uint32, d int) {
	k := pairKey(owner, member)
	old := pc.counts[k]
	n := old + d
	switch {
	case n < 0:
		panic("cone: pair credit refcount underflow")
	case n == 0:
		delete(pc.counts, k)
	default:
		pc.counts[k] = n
	}
	if (old == 0) != (n == 0) {
		pc.touched[k] = struct{}{}
	}
}

// Dirty reports whether any pair's membership changed since the last
// Slab or Patch — when false, a previously built slab is still exact.
func (pc *PairCounts) Dirty() bool { return len(pc.touched) > 0 }

// Slab builds the full provider/peer-observed cone slab over idx in the
// ExportSlab layout: idx.Len() cones of (idx.Len()+63)/64 words each,
// self bit always set. Every refcounted pair's owner and member must be
// interned in idx — a miss means the caller's index is stale relative
// to the credited relationships, a programming error. Slab resets the
// touched set: subsequent Patch calls apply only later changes.
func (pc *PairCounts) Slab(idx *asindex.Index) []uint64 {
	n := idx.Len()
	wps := (n + 63) / 64
	slab := make([]uint64, n*wps)
	for i := 0; i < n; i++ {
		slab[i*wps+i/64] |= 1 << uint(i%64)
	}
	for k := range pc.counts {
		oi, mi := pc.positions(idx, k)
		slab[int(oi)*wps+int(mi)/64] |= 1 << uint(mi%64)
	}
	pc.touched = make(map[uint64]struct{})
	return slab
}

// Patch copies prev — a slab produced by Slab or Patch over an
// identical index — and applies every membership change since, reading
// the final refcount state so the order in which credits were applied
// within the epoch cannot matter. The caller owns the contract that idx
// is unchanged from the slab it passes; when the interned AS set
// changes, rebuild with Slab instead.
func (pc *PairCounts) Patch(idx *asindex.Index, prev []uint64) []uint64 {
	n := idx.Len()
	wps := (n + 63) / 64
	if len(prev) != n*wps {
		panic("cone: Patch slab size does not match index")
	}
	slab := append([]uint64(nil), prev...)
	for k := range pc.touched {
		oi, mi := pc.positions(idx, k)
		w := int(oi)*wps + int(mi)/64
		bit := uint64(1) << uint(mi%64)
		if pc.counts[k] > 0 {
			slab[w] |= bit
		} else if oi != mi { // never clear a self bit
			slab[w] &^= bit
		}
	}
	pc.touched = make(map[uint64]struct{})
	return slab
}

// positions resolves a pair key to interned positions, panicking on a
// stale index (see Slab).
func (pc *PairCounts) positions(idx *asindex.Index, k uint64) (oi, mi int32) {
	oi, ok1 := idx.Pos(uint32(k >> 32))
	mi, ok2 := idx.Pos(uint32(k))
	if !ok1 || !ok2 {
		panic("cone: credited pair references an AS outside the index")
	}
	return oi, mi
}
