package cone

import (
	"math/bits"

	"github.com/asrank-go/asrank/internal/asindex"
	"github.com/asrank-go/asrank/internal/pool"
)

// BitSets is the compact cone representation the parallel engine
// produces: one bitset of interned AS positions per AS. It answers
// size and membership queries without materializing maps; Sets()
// converts to the legacy map-of-sets form when callers need it.
type BitSets struct {
	idx     *asindex.Index
	cones   []asindex.Bitset
	workers int
}

// Index returns the dense ASN index the cones are expressed in.
func (bs *BitSets) Index() *asindex.Index { return bs.idx }

// Len returns the number of ASes with a cone.
func (bs *BitSets) Len() int { return len(bs.cones) }

// Contains reports whether member is in asn's cone.
//
//asrank:hotpath
func (bs *BitSets) Contains(asn, member uint32) bool {
	ai, ok1 := bs.idx.Pos(asn)
	mi, ok2 := bs.idx.Pos(member)
	return ok1 && ok2 && bs.cones[ai].Contains(mi)
}

// Sizes returns per-AS cone sizes in number of ASes.
func (bs *BitSets) Sizes() map[uint32]int {
	n := len(bs.cones)
	counts := make([]int, n)
	pool.Chunks(bs.workers, n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i] = bs.cones[i].Count()
		}
	})
	out := make(map[uint32]int, n)
	for i, c := range counts {
		out[bs.idx.ASN(int32(i))] = c
	}
	return out
}

// WeightedSizes sums a per-position weight over each cone: out[i] is
// the total weight of cone i's members, where w is indexed by interned
// position (w[i] = 0 for unweighted ASes). One parallel pass over the
// slab replaces a per-query walk — this is how the API server
// precomputes cone-prefix totals at snapshot build time. w must have
// at least Len() entries.
func (bs *BitSets) WeightedSizes(w []int64) []int64 {
	n := len(bs.cones)
	out := make([]int64, n)
	pool.Chunks(bs.workers, n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum int64
			for wi, word := range bs.cones[i] {
				for word != 0 {
					sum += w[wi<<6+bits.TrailingZeros64(word)]
					word &= word - 1
				}
			}
			out[i] = sum
		}
	})
	return out
}

// ExportSlab copies the cones into one contiguous word slab in
// interned-position order — the serialization seam the epoch warehouse
// persists. The slab holds Len() cones of wordsPerSet words each;
// cone i occupies words [i*wordsPerSet, (i+1)*wordsPerSet).
func (bs *BitSets) ExportSlab() (words []uint64, wordsPerSet int) {
	wordsPerSet = (bs.idx.Len() + 63) / 64
	words = make([]uint64, wordsPerSet*len(bs.cones))
	for i, c := range bs.cones {
		copy(words[i*wordsPerSet:(i+1)*wordsPerSet], c)
	}
	return words, wordsPerSet
}

// FromSlab is the inverse of ExportSlab: it rebuilds a BitSets over idx
// from a contiguous word slab (one cone of (Len()+63)/64 words per
// interned position). The slab is carved, not copied; callers hand over
// ownership. workers bounds the parallel size/materialization passes
// (<= 0 selects GOMAXPROCS).
func FromSlab(idx *asindex.Index, words []uint64, workers int) *BitSets {
	n := idx.Len()
	wps := (n + 63) / 64
	cones := make([]asindex.Bitset, n)
	for i := 0; i < n; i++ {
		cones[i] = asindex.Bitset(words[i*wps : (i+1)*wps : (i+1)*wps])
	}
	return &BitSets{idx: idx, cones: cones, workers: workers}
}

// Members returns asn's cone membership, ascending, or nil when asn is
// not interned.
func (bs *BitSets) Members(asn uint32) []uint32 {
	ai, ok := bs.idx.Pos(asn)
	if !ok {
		return nil
	}
	b := bs.cones[ai]
	out := make([]uint32, 0, b.Count())
	b.ForEach(func(i int32) { out = append(out, bs.idx.ASN(i)) })
	return out
}

// Sets materializes the legacy map-of-sets representation, sharding
// the per-AS conversion across the worker pool. The word loop is
// inlined (rather than Bitset.ForEach) to keep a per-member closure
// call out of the hottest conversion loop.
func (bs *BitSets) Sets() Sets {
	n := len(bs.cones)
	ms := make([]map[uint32]bool, n)
	asns := bs.idx.ASNs()
	pool.Chunks(bs.workers, n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b := bs.cones[i]
			m := make(map[uint32]bool, b.Count())
			for wi, w := range b {
				for w != 0 {
					m[asns[wi<<6+bits.TrailingZeros64(w)]] = true
					w &= w - 1
				}
			}
			ms[i] = m
		}
	})
	out := make(Sets, n)
	for i, m := range ms {
		out[bs.idx.ASN(int32(i))] = m
	}
	return out
}
