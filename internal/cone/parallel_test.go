package cone

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/core"
	"github.com/asrank-go/asrank/internal/paths"
	"github.com/asrank-go/asrank/internal/topology"
)

// seqRelations is a frozen copy of the seed's sequential map-based cone
// engine, kept as the reference the parallel bitset engine must match
// exactly.
type seqRelations struct {
	customers map[uint32][]uint32
	rel       map[paths.Link]topology.Relationship
	ases      []uint32
}

func newSeqRelations(rels map[paths.Link]topology.Relationship) *seqRelations {
	r := &seqRelations{
		customers: make(map[uint32][]uint32),
		rel:       make(map[paths.Link]topology.Relationship, len(rels)),
	}
	seen := make(map[uint32]bool)
	for l, rel := range rels {
		r.rel[l] = rel
		switch rel {
		case topology.P2C:
			r.customers[l.A] = append(r.customers[l.A], l.B)
		case topology.C2P:
			r.customers[l.B] = append(r.customers[l.B], l.A)
		}
		if !seen[l.A] {
			seen[l.A] = true
			r.ases = append(r.ases, l.A)
		}
		if !seen[l.B] {
			seen[l.B] = true
			r.ases = append(r.ases, l.B)
		}
	}
	return r
}

func (r *seqRelations) relOf(x, y uint32) topology.Relationship {
	rel, ok := r.rel[paths.NewLink(x, y)]
	if !ok {
		return topology.None
	}
	if paths.NewLink(x, y).A == x {
		return rel
	}
	return rel.Invert()
}

func (r *seqRelations) recursive() Sets {
	out := make(Sets, len(r.ases))
	for _, asn := range r.ases {
		cone := map[uint32]bool{}
		stack := []uint32{asn}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cone[x] {
				continue
			}
			cone[x] = true
			stack = append(stack, r.customers[x]...)
		}
		out[asn] = cone
	}
	return out
}

func (r *seqRelations) observed(ds *paths.Dataset, needEntry bool) Sets {
	out := make(Sets, len(r.ases))
	for _, asn := range r.ases {
		out[asn] = map[uint32]bool{asn: true}
	}
	for _, p := range ds.Paths {
		asns := p.ASNs
		n := len(asns)
		if n < 2 {
			continue
		}
		descendTo := make([]int, n)
		descendTo[n-1] = n - 1
		for i := n - 2; i >= 0; i-- {
			if r.relOf(asns[i], asns[i+1]) == topology.P2C {
				descendTo[i] = descendTo[i+1]
			} else {
				descendTo[i] = i
			}
		}
		for i := 0; i < n-1; i++ {
			if descendTo[i] == i {
				continue
			}
			if needEntry {
				if i == 0 {
					continue
				}
				switch r.relOf(asns[i-1], asns[i]) {
				case topology.P2C, topology.P2P:
				default:
					continue
				}
			}
			cone := out[asns[i]]
			if cone == nil {
				cone = map[uint32]bool{asns[i]: true}
				out[asns[i]] = cone
			}
			for j := i + 1; j <= descendTo[i]; j++ {
				cone[asns[j]] = true
			}
		}
	}
	return out
}

// inferredCorpus generates a synthetic Internet, simulates a corpus,
// and infers relationships over it.
func inferredCorpus(t *testing.T, seed int64, ases int) *core.Result {
	t.Helper()
	p := topology.DefaultParams(seed)
	p.ASes = ases
	topo := topology.Generate(p)
	sim, err := bgpsim.Run(topo, bgpsim.DefaultOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := paths.Sanitize(sim.Dataset, paths.SanitizeOptions{})
	return core.Infer(clean, core.Options{})
}

// TestParallelMatchesSequentialSeed is the property test for the
// parallel engine: on randomized generated Internets, every cone
// definition must produce Sets identical to the seed's sequential
// map-based implementation at every worker count, and PP ⊆
// BGP-observed ⊆ recursive must hold for every AS.
func TestParallelMatchesSequentialSeed(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		res := inferredCorpus(t, seed, 400)
		ref := newSeqRelations(res.Rels)
		wantRec := ref.recursive()
		wantBGP := ref.observed(res.Dataset, false)
		wantPP := ref.observed(res.Dataset, true)

		for _, workers := range []int{1, 3, 8} {
			r := NewRelations(res.Rels).WithWorkers(workers)
			if got := r.Recursive(); !reflect.DeepEqual(got, wantRec) {
				t.Fatalf("seed %d workers %d: Recursive differs from sequential seed", seed, workers)
			}
			if got := r.BGPObserved(res.Dataset); !reflect.DeepEqual(got, wantBGP) {
				t.Fatalf("seed %d workers %d: BGPObserved differs from sequential seed", seed, workers)
			}
			if got := r.ProviderPeerObserved(res.Dataset); !reflect.DeepEqual(got, wantPP) {
				t.Fatalf("seed %d workers %d: ProviderPeerObserved differs from sequential seed", seed, workers)
			}
		}

		// Nesting: PP ⊆ BGP-observed ⊆ recursive for every AS.
		r := NewRelations(res.Rels)
		rec := r.RecursiveBits()
		bgp := r.BGPObservedBits(res.Dataset)
		pp := r.ProviderPeerObservedBits(res.Dataset)
		for _, asn := range r.ASes() {
			if !pp.Contains(asn, asn) {
				t.Fatalf("seed %d: AS %d missing from its own PP cone", seed, asn)
			}
			for _, member := range pp.Members(asn) {
				if !bgp.Contains(asn, member) {
					t.Fatalf("seed %d: PP cone(%d) member %d not in BGP cone", seed, asn, member)
				}
			}
			for _, member := range bgp.Members(asn) {
				if !rec.Contains(asn, member) {
					t.Fatalf("seed %d: BGP cone(%d) member %d not in recursive cone", seed, asn, member)
				}
			}
		}
	}
}

// TestParallelPPDCByteIdentical pins the strongest determinism claim:
// the serialized ppdc-ases output is byte-identical across worker
// counts.
func TestParallelPPDCByteIdentical(t *testing.T) {
	res := inferredCorpus(t, 9, 300)
	var want bytes.Buffer
	if err := WritePPDC(&want, NewRelations(res.Rels).WithWorkers(1).ProviderPeerObserved(res.Dataset)); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		var got bytes.Buffer
		sets := NewRelations(res.Rels).WithWorkers(workers).ProviderPeerObserved(res.Dataset)
		if err := WritePPDC(&got, sets); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("workers=%d: ppdc output differs from sequential run", workers)
		}
	}
}

// TestBitSetsAccessors covers the compact representation's query API
// against the materialized Sets.
func TestBitSetsAccessors(t *testing.T) {
	r := hierarchy()
	bits := r.RecursiveBits()
	sets := r.Recursive()
	if !reflect.DeepEqual(bits.Sets(), sets) {
		t.Fatal("BitSets.Sets() differs from Recursive()")
	}
	if !reflect.DeepEqual(bits.Sizes(), sets.Sizes()) {
		t.Fatal("BitSets.Sizes() differs from Sets.Sizes()")
	}
	if !bits.Contains(1, 5) || bits.Contains(5, 1) {
		t.Error("Contains orientation wrong")
	}
	if bits.Contains(99, 1) || bits.Contains(1, 99) {
		t.Error("Contains should miss unknown ASNs")
	}
	if got := bits.Members(1); !reflect.DeepEqual(got, []uint32{1, 3, 4, 5}) {
		t.Errorf("Members(1) = %v", got)
	}
	if bits.Members(99) != nil {
		t.Error("Members(99) should be nil")
	}
	if bits.Len() != 5 || bits.Index().Len() != 5 {
		t.Errorf("Len = %d, Index().Len() = %d", bits.Len(), bits.Index().Len())
	}
}
