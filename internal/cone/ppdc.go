package cone

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePPDC renders cone membership in the CAIDA "ppdc-ases" convention:
// one line per AS, the AS number followed by every cone member
// (including itself), space separated, with '#' comment lines first.
// ASes are emitted in ascending order, members ascending per line.
func WritePPDC(w io.Writer, sets Sets, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		fmt.Fprintf(bw, "# %s\n", c)
	}
	asns := make([]uint32, 0, len(sets))
	for asn := range sets {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		members := make([]uint32, 0, len(sets[asn]))
		for m := range sets[asn] {
			members = append(members, m)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		bw.WriteString(strconv.FormatUint(uint64(asn), 10))
		for _, m := range members {
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(uint64(m), 10))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPPDC parses the ppdc-ases format back into cone sets.
func ReadPPDC(r io.Reader) (Sets, error) {
	out := make(Sets)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		asn64, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("cone: ppdc line %d: bad ASN %q", lineno, fields[0])
		}
		asn := uint32(asn64)
		if _, dup := out[asn]; dup {
			return nil, fmt.Errorf("cone: ppdc line %d: duplicate AS %d", lineno, asn)
		}
		members := make(map[uint32]bool, len(fields))
		for _, f := range fields[1:] {
			m, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("cone: ppdc line %d: bad member %q", lineno, f)
			}
			members[uint32(m)] = true
		}
		members[asn] = true // an AS is always in its own cone
		out[asn] = members
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
