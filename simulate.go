package asrank

import (
	"io"
	"time"

	"github.com/asrank-go/asrank/internal/bgpsim"
	"github.com/asrank-go/asrank/internal/topology"
)

// Ground-truth and simulation API, re-exported for experiments that
// need a data substitute for real collector archives.
type (
	// Topology is an AS graph with ground-truth relationships.
	Topology = topology.Topology
	// TopologyParams controls synthetic Internet generation.
	TopologyParams = topology.Params
	// EvolveParams controls longitudinal snapshot series.
	EvolveParams = topology.EvolveParams
	// SimOptions configures a simulated collection run.
	SimOptions = bgpsim.Options
	// SimResult is a simulated collection: paths plus run metadata.
	SimResult = bgpsim.Result
)

// DefaultTopologyParams returns the baseline generator parameters.
func DefaultTopologyParams(seed int64) TopologyParams {
	return topology.DefaultParams(seed)
}

// GenerateInternet builds a synthetic Internet with known ground truth.
func GenerateInternet(p TopologyParams) *Topology { return topology.Generate(p) }

// GenerateSeries builds evolving snapshots (the longitudinal substrate).
func GenerateSeries(p TopologyParams, e EvolveParams) []*Topology {
	return topology.GenerateSeries(p, e)
}

// DefaultEvolveParams returns the series parameters the experiments use.
func DefaultEvolveParams() EvolveParams { return topology.DefaultEvolveParams() }

// DefaultSimOptions returns the collection options the experiments use.
func DefaultSimOptions(seed int64) SimOptions { return bgpsim.DefaultOptions(seed) }

// Simulate propagates routes over topo and returns the paths a
// collector peering with the selected vantage points would record.
func Simulate(topo *Topology, opts SimOptions) (*SimResult, error) {
	return bgpsim.Run(topo, opts)
}

// ExportMRT writes a simulated collection as a TABLE_DUMP_V2 snapshot.
func ExportMRT(w io.Writer, res *SimResult, timestamp time.Time) error {
	return bgpsim.ExportMRT(w, res, timestamp)
}

// ExportUpdates writes a simulated collection as a BGP4MP update trace
// (session establishment plus announcements), the other archive format
// collectors publish.
func ExportUpdates(w io.Writer, res *SimResult, start time.Time) error {
	return bgpsim.ExportUpdates(w, res, start)
}

// ValleyFree reports whether a path obeys Gao–Rexford export rules
// under a topology's ground-truth relationships.
func ValleyFree(topo *Topology, path []uint32) bool {
	return bgpsim.ValleyFree(topo, path)
}
