GO ?= go

.PHONY: build test check lint lint-report bench bench-api bench-store bench-stream bench-drift metrics-lint fuzz-smoke trace-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled gate the parallel cone engine is held to.
check: lint
	$(GO) vet ./...
	$(GO) test -race ./...

# The repo's own analyzer suite (DESIGN.md §9): concurrency,
# determinism, observability-naming, error-wrapping, publish-freeze,
# hot-path allocation, and lock-discipline invariants. Exit 1 means
# findings; suppress individual lines with
# `//lint:ignore <analyzer> <reason>`, or use the //asrank:
# annotations the dataflow analyzers read (see DESIGN.md §9).
lint:
	$(GO) run ./cmd/asrank-lint ./...

# Same run, but leave machine-readable reports at the repo root: a
# SARIF 2.1.0 log (code-scanning upload) and the custom JSON report
# (findings plus the registered-analyzer inventory). Exit status is
# the same contract as `make lint`.
lint-report:
	$(GO) run ./cmd/asrank-lint -sarif lint.sarif -json lint.json ./...
	@echo "reports in lint.sarif and lint.json"

bench:
	$(GO) test -run xxx -bench . -benchmem .

# API read-path benchmark (DESIGN.md §13): generate a seed corpus,
# serve it with asrankd, and drive asbench's weighted request mix
# (point lookups, cone probes, pages, bulk, conditional revalidation)
# against the live server. Leaves p50/p99 latency, req/s-per-core,
# status counts, and the compact-vs-pretty byte comparison in
# BENCH_api.json at the repo root.
BENCHDIR ?= bench-api
BENCH_DURATION ?= 10s

bench-api:
	mkdir -p $(BENCHDIR)/bin
	$(GO) build -o $(BENCHDIR)/bin/ ./cmd/topogen ./cmd/bgpsim ./cmd/asrankd ./cmd/asbench
	$(BENCHDIR)/bin/topogen -ases 2000 -seed 42 -o $(BENCHDIR)/topo.txt
	$(BENCHDIR)/bin/bgpsim -topo $(BENCHDIR)/topo.txt -vps 12 -seed 42 -o $(BENCHDIR)/paths.txt
	$(BENCHDIR)/bin/asrankd -paths $(BENCHDIR)/paths.txt -listen 127.0.0.1:17908 & pid=$$!; \
	$(BENCHDIR)/bin/asbench -target http://127.0.0.1:17908 \
		-duration $(BENCH_DURATION) -seed 42 -out BENCH_api.json \
		|| { kill -INT $$pid; exit 1; }; \
	kill -INT $$pid; wait $$pid
	@echo "report in BENCH_api.json"

# Epoch-warehouse benchmark (DESIGN.md §14): infer a deterministic
# evolving series, append every epoch to a fresh store, and report the
# storage profile (one full epoch vs the delta chain, bytes/AS),
# encode/decode MB/s, history/diff query p50/p99, and the per-epoch
# round-trip ETag proof in BENCH_store.json at the repo root. The
# committed BENCH_store.json is the reference run at these defaults.
BENCH_STORE_EPOCHS ?= 12
BENCH_STORE_SCALE ?= 2000

bench-store:
	mkdir -p $(BENCHDIR)/bin
	$(GO) build -o $(BENCHDIR)/bin/ ./cmd/storebench
	$(BENCHDIR)/bin/storebench -epochs $(BENCH_STORE_EPOCHS) \
		-scale $(BENCH_STORE_SCALE) -vps 12 -seed 42 -out BENCH_store.json
	@echo "report in BENCH_store.json"

# Streaming-epoch benchmark (DESIGN.md §15): simulate a collection,
# churn it at BENCH_STREAM_CHURN per epoch, and run every epoch down
# both the incremental engine and the from-scratch batch pipeline —
# differentially checked, so the reported speedup is between paths that
# produced bit-identical snapshots. Leaves epochs/s, update-to-serve
# p50/p99, and the incremental-vs-batch speedup in BENCH_stream.json at
# the repo root; a non-zero exit means an epoch diverged. The committed
# BENCH_stream.json is the reference run at these defaults.
BENCH_STREAM_EPOCHS ?= 12
BENCH_STREAM_SCALE ?= 2000
BENCH_STREAM_CHURN ?= 0.01
# When set, streambench also writes the per-epoch commit provenance
# (the /debug/epochs shape) to this path — the CI artifact that answers
# "which phase got slower" when the drift guard fires.
BENCH_STREAM_EPOCHS_OUT ?=

bench-stream:
	mkdir -p $(BENCHDIR)/bin
	$(GO) build -o $(BENCHDIR)/bin/ ./cmd/streambench
	$(BENCHDIR)/bin/streambench -epochs $(BENCH_STREAM_EPOCHS) \
		-scale $(BENCH_STREAM_SCALE) -churn $(BENCH_STREAM_CHURN) \
		-vps 12 -seed 42 -out BENCH_stream.json \
		$(if $(BENCH_STREAM_EPOCHS_OUT),-epochs-out $(BENCH_STREAM_EPOCHS_OUT),)
	@echo "report in BENCH_stream.json"

# Benchmark drift guard: save the committed reference reports aside,
# re-run the API and streaming benchmarks at their structural defaults
# (BENCH_DURATION may shorten the API run — reqPerSec is a rate, so
# short runs stay comparable), and fail if either throughput metric
# regressed past BENCH_DRIFT_TOLERANCE. The streaming run also leaves
# the per-epoch provenance artifact in $(BENCHDIR)/stream-epochs.json.
BENCH_DRIFT_TOLERANCE ?= 0.25

bench-drift:
	mkdir -p $(BENCHDIR)
	cp BENCH_api.json $(BENCHDIR)/ref_api.json
	cp BENCH_stream.json $(BENCHDIR)/ref_stream.json
	$(MAKE) bench-api
	$(MAKE) bench-stream BENCH_STREAM_EPOCHS_OUT=$(BENCHDIR)/stream-epochs.json
	$(GO) run ./cmd/benchdrift -ref $(BENCHDIR)/ref_api.json \
		-fresh BENCH_api.json -metric reqPerSec -tolerance $(BENCH_DRIFT_TOLERANCE)
	$(GO) run ./cmd/benchdrift -ref $(BENCHDIR)/ref_stream.json \
		-fresh BENCH_stream.json -metric epochsPerSec -tolerance $(BENCH_DRIFT_TOLERANCE)

# Standalone exposition-format gate: the strict Prometheus text-format
# checks on obs itself plus the end-to-end /metrics surface.
metrics-lint:
	$(GO) test -count=1 -run 'TestExposition|TestLint' ./internal/obs
	$(GO) test -count=1 -run TestMetricsEndToEnd ./internal/apiserver

# End-to-end span-trace demo (DESIGN.md §12): simulate a seed topology,
# replay it into a live collector through chaos-injected dials, and run
# inference — each stage writing a -trace capture. Every file is
# schema-self-checked on write; drag any of them into
# https://ui.perfetto.dev (or chrome://tracing) to browse.
TRACEDIR ?= trace-demo

trace-demo:
	mkdir -p $(TRACEDIR)/bin
	$(GO) build -o $(TRACEDIR)/bin/ ./cmd/topogen ./cmd/collector ./cmd/bgpsim ./cmd/asrank
	$(TRACEDIR)/bin/topogen -ases 800 -seed 42 -o $(TRACEDIR)/topo.txt
	$(TRACEDIR)/bin/bgpsim -topo $(TRACEDIR)/topo.txt -vps 8 -seed 42 \
		-o $(TRACEDIR)/paths.txt -trace $(TRACEDIR)/bgpsim-trace.json
	$(TRACEDIR)/bin/collector -listen 127.0.0.1:17901 \
		-paths $(TRACEDIR)/collected.txt & pid=$$!; sleep 1; \
	$(TRACEDIR)/bin/bgpsim -topo $(TRACEDIR)/topo.txt -vps 8 -seed 42 \
		-replay 127.0.0.1:17901 -chaos-seed 42 -retries 16 \
		-trace $(TRACEDIR)/replay-trace.json || { kill -INT $$pid; exit 1; }; \
	kill -INT $$pid; wait $$pid
	$(TRACEDIR)/bin/asrank -paths $(TRACEDIR)/paths.txt \
		-o $(TRACEDIR)/rels.txt -trace $(TRACEDIR)/asrank-trace.json
	@echo "traces in $(TRACEDIR)/: bgpsim-trace.json replay-trace.json asrank-trace.json"

# Short native-fuzzing pass over every decoder target, seeded with the
# shared chaos-corrupted corpus. Each target gets FUZZTIME; `go test`
# allows only one -fuzz pattern per invocation, hence one line each.
FUZZTIME ?= 5s

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseAttributes$$' -fuzztime $(FUZZTIME) ./internal/bgp
	$(GO) test -run '^$$' -fuzz '^FuzzParseUpdate$$' -fuzztime $(FUZZTIME) ./internal/bgp
	$(GO) test -run '^$$' -fuzz '^FuzzParseOpenBody$$' -fuzztime $(FUZZTIME) ./internal/bgp
	$(GO) test -run '^$$' -fuzz '^FuzzReadMessage$$' -fuzztime $(FUZZTIME) ./internal/bgp
	$(GO) test -run '^$$' -fuzz '^FuzzReader$$' -fuzztime $(FUZZTIME) ./internal/mrt
	$(GO) test -run '^$$' -fuzz '^FuzzCorpusMutator$$' -fuzztime $(FUZZTIME) ./internal/streamtest
