GO ?= go

.PHONY: build test check bench metrics-lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled gate the parallel cone engine is held to.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Standalone exposition-format gate: the strict Prometheus text-format
# checks on obs itself plus the end-to-end /metrics surface.
metrics-lint:
	$(GO) test -count=1 -run 'TestExposition|TestLint' ./internal/obs
	$(GO) test -count=1 -run TestMetricsEndToEnd ./internal/apiserver
