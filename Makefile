GO ?= go

.PHONY: build test check lint bench metrics-lint fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled gate the parallel cone engine is held to.
check: lint
	$(GO) vet ./...
	$(GO) test -race ./...

# The repo's own analyzer suite (DESIGN.md §9): concurrency,
# determinism, observability-naming, and error-wrapping invariants.
# Exit 1 means findings; suppress individual lines with
# `//lint:ignore <analyzer> <reason>`.
lint:
	$(GO) run ./cmd/asrank-lint ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Standalone exposition-format gate: the strict Prometheus text-format
# checks on obs itself plus the end-to-end /metrics surface.
metrics-lint:
	$(GO) test -count=1 -run 'TestExposition|TestLint' ./internal/obs
	$(GO) test -count=1 -run TestMetricsEndToEnd ./internal/apiserver

# Short native-fuzzing pass over every decoder target, seeded with the
# shared chaos-corrupted corpus. Each target gets FUZZTIME; `go test`
# allows only one -fuzz pattern per invocation, hence one line each.
FUZZTIME ?= 5s

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseAttributes$$' -fuzztime $(FUZZTIME) ./internal/bgp
	$(GO) test -run '^$$' -fuzz '^FuzzParseUpdate$$' -fuzztime $(FUZZTIME) ./internal/bgp
	$(GO) test -run '^$$' -fuzz '^FuzzParseOpenBody$$' -fuzztime $(FUZZTIME) ./internal/bgp
	$(GO) test -run '^$$' -fuzz '^FuzzReadMessage$$' -fuzztime $(FUZZTIME) ./internal/bgp
	$(GO) test -run '^$$' -fuzz '^FuzzReader$$' -fuzztime $(FUZZTIME) ./internal/mrt
