GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled gate the parallel cone engine is held to.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .
