// Validation: assembling the paper's three ground-truth sources —
// operator-reported relationships, RPSL policy, and BGP communities —
// and scoring an inference against each and against the merged corpus.
//
//	go run ./examples/validation
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	asrank "github.com/asrank-go/asrank"
)

// A hand-written IRR fragment: AS64496 buys from AS3356 and sells to
// AS64511, in exactly the policy idiom the extractor understands.
const irrFragment = `
aut-num:   AS64496
as-name:   EXAMPLE-NET
import:    from AS3356 accept ANY
export:    to AS3356 announce AS64496
import:    from AS64511 accept AS64511
export:    to AS64511 announce ANY
source:    EXAMPLE
`

func main() {
	// Show RPSL extraction on the hand-written fragment first.
	rels, err := asrank.RPSLRelationships(strings.NewReader(irrFragment))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("relationships extracted from the IRR fragment:")
	for l, r := range rels {
		fmt.Printf("  %v: %v (relative to AS%d)\n", l, r, l.A)
	}

	// Now the full pipeline on simulated data.
	params := asrank.DefaultTopologyParams(99)
	params.ASes = 1200
	topo := asrank.GenerateInternet(params)
	opts := asrank.DefaultSimOptions(99)
	opts.CommunityDocFrac = 0.3 // 30% of ASes document communities
	sim, err := asrank.Simulate(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	res := asrank.Infer(asrank.MustSanitize(sim.Dataset), asrank.InferOptions{})

	// Source 1: directly reported (8% of links, 1% misreported).
	reported := asrank.ReportedRelationships(topo, 0.08, 0.01, 99)

	// Source 3: communities, recovered from the MRT RIB export.
	var rib bytes.Buffer
	if err := asrank.ExportMRT(&rib, sim, time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		log.Fatal(err)
	}
	communities, err := asrank.CommunityRelationships(&rib)
	if err != nil {
		log.Fatal(err)
	}

	corpus := asrank.NewCorpus()
	corpus.AddAll(reported, asrank.SourceReported)
	corpus.AddAll(communities, asrank.SourceCommunities)

	fmt.Printf("\nvalidation corpus: %d links (%d conflicts dropped)\n",
		corpus.Len(), corpus.Conflicts())
	for name, truth := range map[string]map[asrank.Link]asrank.Relationship{
		"reported":    reported,
		"communities": communities,
	} {
		m := asrank.Evaluate(res.Rels, truth)
		fmt.Printf("  vs %-12s %4d links validated, c2p PPV %.3f, p2p PPV %.3f\n",
			name+":", m.C2PTotal+m.P2PTotal, m.C2PPPV(), m.P2PPPV())
	}
	m := asrank.EvaluateCorpus(res.Rels, corpus)
	fmt.Printf("  vs corpus:      %4d links validated, c2p PPV %.3f, p2p PPV %.3f\n",
		m.C2PTotal+m.P2PTotal, m.C2PPPV(), m.P2PPPV())
}
