// MRT round trip: export a simulated collection as a TABLE_DUMP_V2 RIB
// snapshot — the archive format Route Views and RIPE RIS publish — then
// read it back and run inference on the recovered paths.
//
//	go run ./examples/mrtdump
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	asrank "github.com/asrank-go/asrank"
)

func main() {
	params := asrank.DefaultTopologyParams(7)
	params.ASes = 800
	topo := asrank.GenerateInternet(params)
	opts := asrank.DefaultSimOptions(7)
	opts.NumVPs = 10
	sim, err := asrank.Simulate(topo, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Write the snapshot the way a collector archive would store it.
	name := filepath.Join(os.TempDir(), "asrank-example-rib.mrt")
	f, err := os.Create(name)
	if err != nil {
		log.Fatal(err)
	}
	ts := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	if err := asrank.ExportMRT(f, sim, ts); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(name)
	fmt.Printf("wrote %s: %d bytes, %d routes from %d peers\n",
		name, info.Size(), sim.Dataset.NumPaths(), len(sim.VPs))

	// Read it back as an inference input.
	ds, stats, err := asrank.ReadMRTFile(name, "example-rv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %d RIB entries -> %d paths (%d AS_SET discarded)\n",
		stats.Entries, ds.NumPaths(), stats.ASSets)

	res := asrank.Infer(asrank.MustSanitize(ds), asrank.InferOptions{})
	m := asrank.Evaluate(res.Rels, topo.Links())
	fmt.Printf("inference from the MRT file: %d links, c2p PPV %.3f, p2p PPV %.3f\n",
		len(res.Rels), m.C2PPPV(), m.P2PPPV())

	if err := os.Remove(name); err != nil {
		log.Fatal(err)
	}
}
