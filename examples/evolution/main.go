// Evolution: a longitudinal study in the style of the paper's
// 1998–2013 analysis — the Internet grows across snapshots, peering
// densifies, and the AS ranking by customer cone shifts.
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"

	asrank "github.com/asrank-go/asrank"
)

func main() {
	params := asrank.DefaultTopologyParams(2013)
	params.ASes = 500 // first snapshot; later snapshots grow ~8% each
	evolve := asrank.DefaultEvolveParams()
	evolve.Snapshots = 8
	series := asrank.GenerateSeries(params, evolve)

	type snapshot struct {
		year  int
		sizes map[uint32]int
		rank  []uint32
	}
	var snaps []snapshot

	for i, topo := range series {
		opts := asrank.DefaultSimOptions(2013 + int64(i))
		opts.NumVPs = 15
		sim, err := asrank.Simulate(topo, opts)
		if err != nil {
			log.Fatal(err)
		}
		clean := asrank.MustSanitize(sim.Dataset)
		res := asrank.Infer(clean, asrank.InferOptions{})
		rels := asrank.NewRelations(res.Rels)
		sizes := rels.ProviderPeerObserved(res.Dataset).Sizes()
		snaps = append(snaps, snapshot{
			year:  2006 + i,
			sizes: sizes,
			rank:  asrank.RankByCone(sizes, res.TransitDegree),
		})

		peers := 0
		for _, rel := range res.Rels {
			if rel == asrank.P2P {
				peers++
			}
		}
		fmt.Printf("%d: %5d ASes, %5d observed links, %4.1f%% p2p, clique size %d\n",
			2006+i, topo.NumASes(), len(res.Rels),
			100*float64(peers)/float64(len(res.Rels)), len(res.Clique))
	}

	// Rank trajectories of the final top five.
	last := snaps[len(snaps)-1]
	fmt.Println("\ncone-size trajectories of the final top 5:")
	for _, asn := range last.rank[:5] {
		fmt.Printf("  AS%-6d", asn)
		for _, s := range snaps {
			fmt.Printf(" %5d", s.sizes[asn])
		}
		fmt.Println()
	}
	fmt.Print("  year    ")
	for _, s := range snaps {
		fmt.Printf(" %5d", s.year)
	}
	fmt.Println()
}
