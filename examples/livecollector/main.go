// Live collector: the full loop over a real network path. A miniature
// BGP route collector listens on localhost; the simulator's vantage
// points each open a BGP session (OPEN/KEEPALIVE/UPDATE with the
// four-byte-AS capability) and announce their tables; inference then
// runs on what the collector heard — exactly how the paper's input data
// comes into existence, in miniature.
//
//	go run ./examples/livecollector
package main

import (
	"fmt"
	"log"

	asrank "github.com/asrank-go/asrank"
)

func main() {
	params := asrank.DefaultTopologyParams(77)
	params.ASes = 600
	topo := asrank.GenerateInternet(params)
	opts := asrank.DefaultSimOptions(77)
	opts.NumVPs = 10
	sim, err := asrank.Simulate(topo, opts)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := asrank.ListenCollector("127.0.0.1:0", asrank.CollectorOptions{Collector: "live-rv"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector listening on %s\n", srv.Addr())

	if err := asrank.ReplayAll(srv.Addr().String(), sim, asrank.ReplayOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	sessions, updates := srv.Stats()
	fmt.Printf("heard %d BGP sessions, %d updates, %d paths\n",
		sessions, updates, srv.Corpus().NumPaths())

	res := asrank.Infer(asrank.MustSanitize(srv.Corpus()), asrank.InferOptions{})
	m := asrank.Evaluate(res.Rels, topo.Links())
	fmt.Printf("inference over the live-collected corpus: %d links, c2p PPV %.3f, p2p PPV %.3f\n",
		len(res.Rels), m.C2PPPV(), m.P2PPPV())
}
