// Quickstart: the end-to-end ASRank workflow in one file.
//
// Real deployments feed the pipeline MRT RIB snapshots from Route Views
// or RIPE RIS; here a synthetic Internet plus route-propagation
// simulation produces an equivalent corpus with known ground truth, so
// the inference can be scored at the end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	asrank "github.com/asrank-go/asrank"
)

func main() {
	// 1. A ground-truth Internet: tier-1 clique, transit hierarchy,
	//    multihomed stubs, content networks, IXP peering.
	params := asrank.DefaultTopologyParams(42)
	params.ASes = 1500
	topo := asrank.GenerateInternet(params)
	fmt.Printf("topology: %d ASes, %d links, clique %v\n",
		topo.NumASes(), topo.NumLinks(), topo.Tier1s())

	// 2. What a route collector would see from 20 vantage points.
	sim, err := asrank.Simulate(topo, asrank.DefaultSimOptions(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected: %d paths from %d VPs\n", sim.Dataset.NumPaths(), len(sim.VPs))

	// 3. Sanitize (paper step 1) and infer relationships (steps 2–9).
	clean, stats := asrank.Sanitize(sim.Dataset, asrank.SanitizeOptions{})
	fmt.Printf("sanitized: kept %d of %d paths (%d loops, %d reserved, %d duplicates removed)\n",
		stats.Kept, stats.Input, stats.LoopDiscarded, stats.ReservedDiscarded, stats.Duplicates)

	res := asrank.Infer(clean, asrank.InferOptions{})
	fmt.Printf("inferred: %d links, clique %v\n", len(res.Rels), res.Clique)

	// 4. Customer cones (provider/peer observed — the AS Rank metric)
	//    and the resulting ranking.
	rels := asrank.NewRelations(res.Rels)
	cones := rels.ProviderPeerObserved(res.Dataset)
	sizes := cones.Sizes()
	rank := asrank.RankByCone(sizes, res.TransitDegree)
	fmt.Println("\ntop 10 ASes by customer cone:")
	for i, asn := range rank[:10] {
		fmt.Printf("  %2d. AS%-6d cone %4d ASes (true cone %d)\n",
			i+1, asn, sizes[asn], len(topo.TrueCone(asn)))
	}

	// 5. Validate against ground truth the way the paper validates
	//    against operator-reported data.
	corpus := asrank.NewCorpus()
	corpus.AddAll(asrank.ReportedRelationships(topo, 0.1, 0.01, 42), asrank.SourceReported)
	m := asrank.EvaluateCorpus(res.Rels, corpus)
	fmt.Printf("\nvalidated against %d reported links: c2p PPV %.3f, p2p PPV %.3f\n",
		m.C2PTotal+m.P2PTotal, m.C2PPPV(), m.P2PPPV())

	full := asrank.Evaluate(res.Rels, topo.Links())
	fmt.Printf("against full ground truth:          c2p PPV %.3f, p2p PPV %.3f\n",
		full.C2PPPV(), full.P2PPPV())
}
